//! The timeline: open buckets in memory, immutable segments on disk,
//! a rollup compactor, and range-query execution over planner covers.

use crate::planner::RangePlanner;
use crate::segment::SegmentHeader;
use crate::store::{SegmentMeta, SegmentStore, StoreRecovery};
use crate::{Result, TimelineConfig, TimelineError, OTHER_LABEL};
use msketch_cube::DynCube;
use msketch_sketches::SketchSpec;
use std::collections::BTreeMap;
use std::path::Path;

/// Ingest/maintenance counters (monotonic since open).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineStats {
    /// Rows accepted into open buckets.
    pub rows_ingested: u64,
    /// Rows dropped because their bucket was already rolled up (late
    /// data past the compaction horizon).
    pub late_dropped: u64,
    /// Segments written by checkpoints (level 0).
    pub segments_written: u64,
    /// Rollup segments produced by compaction (level ≥ 1).
    pub rollups_written: u64,
    /// Dimension values folded into `<other>` by cell budgets.
    pub values_folded: u64,
    /// Segments deleted by retention.
    pub retention_removed: u64,
}

/// What one [`Timeline::maintain`] cycle did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintenanceReport {
    /// Level-0 segments persisted from open buckets.
    pub checkpointed: usize,
    /// Rollup segments written.
    pub compacted: usize,
    /// Segments deleted by retention.
    pub expired: usize,
}

/// A range query's merged partials plus provenance.
pub struct RangeAnswer {
    /// All matching segments merged in time order — run quantile /
    /// group-by / threshold queries against this cube.
    pub cube: DynCube,
    /// Segments the planner read (the cover size).
    pub segments_read: usize,
    /// Snapped inclusive range start (ms).
    pub t0: u64,
    /// Snapped exclusive range end (ms).
    pub t1: u64,
}

/// A time-bucketed store of pre-aggregated cubes with hierarchical
/// rollups and minimal-cover range queries. See the crate docs for the
/// subsystem overview.
pub struct Timeline {
    config: TimelineConfig,
    spec: SketchSpec,
    dim_names: Vec<String>,
    store: SegmentStore,
    planner: RangePlanner,
    /// Open (mutable, in-memory) buckets keyed by bucket start. An
    /// open bucket holds the *full* image of its bucket — reopening a
    /// persisted bucket for late data loads the segment back first —
    /// so a checkpoint always rewrites the whole segment.
    open: BTreeMap<u64, DynCube>,
    stats: TimelineStats,
}

impl Timeline {
    /// Open (creating if needed) a timeline at `dir`.
    ///
    /// Recovery is the segment store's scan: every valid segment is
    /// re-indexed, torn `.tmp` files from interrupted writes are
    /// discarded, and corrupt or schema-mismatched files are skipped
    /// with a count. Rows that were only in open buckets (not yet
    /// checkpointed) at crash time are gone — the timeline's
    /// durability boundary is the checkpoint, exactly like the
    /// engine's WAL-less snapshot path.
    pub fn open(
        dir: &Path,
        spec: SketchSpec,
        dim_names: &[&str],
        config: TimelineConfig,
    ) -> Result<(Timeline, StoreRecovery)> {
        let names: Vec<String> = dim_names.iter().map(|s| s.to_string()).collect();
        let (store, recovery) = SegmentStore::open(dir, &spec, &names, config.fsync)?;
        let planner = RangePlanner::new(config.bucket_ms, config.max_level());
        Ok((
            Timeline {
                config,
                spec,
                dim_names: names,
                store,
                planner,
                open: BTreeMap::new(),
                stats: TimelineStats::default(),
            },
            recovery,
        ))
    }

    /// The timeline's configuration.
    pub fn config(&self) -> &TimelineConfig {
        &self.config
    }

    /// The sketch backend every bucket uses.
    pub fn spec(&self) -> &SketchSpec {
        &self.spec
    }

    /// Dimension names shared by every bucket.
    pub fn dim_names(&self) -> &[String] {
        &self.dim_names
    }

    /// Ingest/maintenance counters.
    pub fn stats(&self) -> &TimelineStats {
        &self.stats
    }

    /// The segment store (read access for stats and tests).
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Open (not yet checkpointed) bucket count.
    pub fn open_buckets(&self) -> usize {
        self.open.len()
    }

    /// Ingest one timestamped row. Returns `true` if the row was
    /// accepted, `false` if it was dropped as too late (its bucket is
    /// already covered by an immutable rollup).
    ///
    /// Late rows for a bucket that is persisted but *not yet rolled
    /// up* are accepted: the segment is loaded back into memory,
    /// merged with the new rows, and rewritten wholesale at the next
    /// checkpoint — the read path never sees a partial bucket.
    pub fn insert(&mut self, ts_ms: u64, dim_values: &[&str], metric: f64) -> Result<bool> {
        let bucket = self.config.bucket_start(ts_ms);
        if self.store.covering(bucket, 1).is_some() {
            self.stats.late_dropped += 1;
            return Ok(false);
        }
        if !self.open.contains_key(&bucket) {
            let cube = match self.store.get(0, bucket).cloned() {
                Some(meta) => self.store.load(&meta)?,
                None => DynCube::from_spec(self.spec.clone(), &self.dim_name_refs()),
            };
            self.open.insert(bucket, cube);
        }
        match self.open.get_mut(&bucket) {
            Some(cube) => cube.insert(dim_values, metric)?,
            // Unreachable (inserted above); spelled as a no-op to keep
            // the ingest path panic-free.
            None => return Ok(false),
        }
        self.stats.rows_ingested += 1;
        Ok(true)
    }

    /// Persist every open bucket as a level-0 segment, then drop from
    /// memory the buckets that are closed as of `now_ms` (the bucket
    /// containing `now_ms` stays open for more rows). Returns the
    /// number of segments written.
    ///
    /// Idempotent and crash-safe: each segment is the *full* bucket
    /// image written atomically, so a crash mid-checkpoint leaves
    /// every bucket either at its previous image or its new one.
    pub fn checkpoint(&mut self, now_ms: u64) -> Result<usize> {
        let starts: Vec<u64> = self.open.keys().copied().collect();
        let mut written = 0usize;
        for start in starts {
            let end = start.saturating_add(self.config.bucket_ms);
            let Some(cube) = self.open.get(&start) else {
                continue;
            };
            if cube.row_count() == 0 {
                // Never materialize empty segments; drop the bucket if
                // it is already closed.
                if end <= now_ms {
                    self.open.remove(&start);
                }
                continue;
            }
            let header = SegmentHeader {
                level: 0,
                start_ms: start,
                end_ms: end,
            };
            let cube = match self.open.get(&start) {
                Some(cube) => cube,
                None => continue,
            };
            self.store.write(header, cube)?;
            written += 1;
            self.stats.segments_written += 1;
            if end <= now_ms {
                self.open.remove(&start);
            }
        }
        Ok(written)
    }

    /// Roll closed segment runs up the hierarchy: for each level `i`,
    /// any aligned run of `fanouts[i]` widths that is fully in the
    /// past (and not yet rolled up) merges into one level-`i+1`
    /// segment, budget-folded per [`TimelineConfig::cell_budget`].
    /// Children stay on disk to serve the fine edges of range queries.
    /// Returns the number of rollups written.
    ///
    /// Processing levels bottom-up lets fresh hour rollups cascade
    /// into day rollups within one call. The `timeline::compact`
    /// failpoint aborts a rollup after its children are chosen,
    /// simulating a crash mid-compaction; because children are never
    /// deleted and the parent write is atomic, recovery simply retries
    /// the same rollup later.
    pub fn compact(&mut self, now_ms: u64) -> Result<usize> {
        let mut rollups = 0usize;
        for level in 0..self.config.fanouts.len() {
            let child_level = level as u8;
            let parent_width = self.config.level_width_ms(level + 1);
            // Candidate parent starts: every distinct aligned window
            // holding at least one child segment.
            let mut parents: Vec<u64> = self
                .store
                .index()
                .range((child_level, 0)..(child_level, u64::MAX))
                .map(|(&(_, start), _)| start - start % parent_width)
                .collect();
            parents.dedup();
            for parent_start in parents {
                let parent_end = parent_start.saturating_add(parent_width);
                if parent_end > now_ms {
                    continue; // window still filling
                }
                if self
                    .store
                    .get(child_level + 1, parent_start)
                    .is_some_and(|meta| meta.end_ms == parent_end)
                {
                    continue; // already rolled up
                }
                if self.open.range(parent_start..parent_end).next().is_some() {
                    continue; // unwritten rows still in memory
                }
                self.rollup_window(child_level, parent_start, parent_end)?;
                rollups += 1;
            }
        }
        Ok(rollups)
    }

    /// Merge every level-`child_level` segment inside the window into
    /// one parent segment, in time order, and persist it.
    fn rollup_window(&mut self, child_level: u8, start: u64, end: u64) -> Result<()> {
        let children: Vec<SegmentMeta> = self
            .store
            .index()
            .range((child_level, start)..(child_level, end))
            .map(|(_, meta)| meta.clone())
            .collect();
        if failpoint::fail_if("timeline::compact") {
            return Err(TimelineError::Io(format!(
                "failpoint timeline::compact injected rolling up [{start}, {end})"
            )));
        }
        // Time-ordered left fold: deterministic for a given set of
        // child segments, so pre- and post-crash compactions of the
        // same children produce bit-identical parents.
        let mut merged = DynCube::from_spec(self.spec.clone(), &self.dim_name_refs());
        for meta in &children {
            let cube = self.store.load(meta)?;
            merged.merge_cube(&cube)?;
        }
        if self.config.cell_budget > 0 {
            let folds = merged.enforce_cell_budget(self.config.cell_budget, OTHER_LABEL);
            self.stats.values_folded += folds as u64;
        }
        let header = SegmentHeader {
            level: child_level + 1,
            start_ms: start,
            end_ms: end,
        };
        self.store.write(header, &merged)?;
        self.stats.rollups_written += 1;
        Ok(())
    }

    /// Delete segments whose range ended before the retention horizon
    /// (`now_ms - retention_ms`); drops equally old open buckets.
    /// Returns the number of segments removed. A zero horizon keeps
    /// everything.
    pub fn enforce_retention(&mut self, now_ms: u64) -> Result<usize> {
        if self.config.retention_ms == 0 {
            return Ok(0);
        }
        let cutoff = now_ms.saturating_sub(self.config.retention_ms);
        let expired: Vec<(u8, u64)> = self
            .store
            .index()
            .values()
            .filter(|meta| meta.end_ms <= cutoff)
            .map(|meta| (meta.level, meta.start_ms))
            .collect();
        let mut removed = 0usize;
        for (level, start) in expired {
            if self.store.remove(level, start)? {
                removed += 1;
                self.stats.retention_removed += 1;
            }
        }
        let stale: Vec<u64> = self
            .open
            .keys()
            .copied()
            .filter(|&start| start.saturating_add(self.config.bucket_ms) <= cutoff)
            .collect();
        for start in stale {
            self.open.remove(&start);
        }
        Ok(removed)
    }

    /// One maintenance cycle: checkpoint open buckets, roll up closed
    /// windows, enforce retention — what the serving layer runs on its
    /// refresh cadence.
    pub fn maintain(&mut self, now_ms: u64) -> Result<MaintenanceReport> {
        let mut span = msketch_obs::span("timeline::maintain");
        let checkpointed = self.checkpoint(now_ms)?;
        let compacted = self.compact(now_ms)?;
        let expired = self.enforce_retention(now_ms)?;
        span.field("checkpointed", checkpointed);
        span.field("compacted", compacted);
        span.field("expired", expired);
        Ok(MaintenanceReport {
            checkpointed,
            compacted,
            expired,
        })
    }

    /// The segments a `[t0, t1)` query would read, in time order
    /// (coarse in the middle, fine at the edges).
    pub fn plan(&self, t0: u64, t1: u64) -> Result<Vec<SegmentMeta>> {
        if t1 <= t0 {
            return Err(TimelineError::BadRange { t0, t1 });
        }
        let mut span = msketch_obs::span("timeline::plan");
        let cover: Vec<SegmentMeta> = self
            .planner
            .cover(self.store.index(), t0, t1)
            .into_iter()
            .filter_map(|(level, start)| self.store.get(level, start).cloned())
            .collect();
        span.field("segments", cover.len());
        Ok(cover)
    }

    /// Answer an arbitrary `[t0, t1)` range by merging the minimal
    /// segment cover in time order. Returns `None` when no persisted
    /// segment overlaps the range (an empty range answer, not an
    /// error). Only checkpointed data is visible — the same snapshot
    /// semantics as the engine's serving path.
    pub fn range_cube(&self, t0: u64, t1: u64) -> Result<Option<RangeAnswer>> {
        let cover = self.plan(t0, t1)?;
        let Some((lo, hi)) = self.planner.snap(t0, t1) else {
            return Err(TimelineError::BadRange { t0, t1 });
        };
        if cover.is_empty() {
            return Ok(None);
        }
        let _span = msketch_obs::span("timeline::merge_cover");
        let mut merged = DynCube::from_spec(self.spec.clone(), &self.dim_name_refs());
        for meta in &cover {
            let cube = self.store.load(meta)?;
            merged.merge_cube(&cube)?;
        }
        Ok(Some(RangeAnswer {
            cube: merged,
            segments_read: cover.len(),
            t0: lo,
            t1: hi,
        }))
    }

    fn dim_name_refs(&self) -> Vec<&str> {
        self.dim_names.iter().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const MIN: u64 = 60_000;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msketch-timeline-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> TimelineConfig {
        TimelineConfig::default()
            .fanouts(&[4, 3])
            .fsync(crate::FsyncPolicy::Never)
    }

    fn open(dir: &Path, config: TimelineConfig) -> Timeline {
        Timeline::open(dir, SketchSpec::moments(6), &["app"], config)
            .unwrap()
            .0
    }

    /// `rows` timestamped rows per bucket across `buckets` buckets.
    fn fill(tl: &mut Timeline, buckets: u64, rows: u64) {
        for b in 0..buckets {
            for i in 0..rows {
                let ts = b * MIN + (i % MIN);
                let app = ["checkout", "search"][(i % 2) as usize];
                // Non-positive integer metrics keep every power sum
                // exactly representable (see the proptest suite).
                let metric = -((i % 17) as f64);
                assert!(tl.insert(ts, &[app], metric).unwrap());
            }
        }
    }

    #[test]
    fn ingest_checkpoint_query_round_trip() {
        let dir = scratch("roundtrip");
        let mut tl = open(&dir, config());
        fill(&mut tl, 6, 50);
        assert_eq!(tl.open_buckets(), 6);
        // Checkpoint at the end of bucket 5: buckets 0..5 close,
        // bucket 5 stays open (now sits inside it).
        let now = 5 * MIN + 1;
        assert_eq!(tl.checkpoint(now).unwrap(), 6);
        assert_eq!(tl.open_buckets(), 1);

        // Range [1m, 4m): three buckets, 150 rows.
        let answer = tl.range_cube(MIN, 4 * MIN).unwrap().unwrap();
        assert_eq!(answer.segments_read, 3);
        assert_eq!(answer.cube.row_count(), 150);
        assert_eq!(answer.t0, MIN);
        assert_eq!(answer.t1, 4 * MIN);

        // Unaligned range snaps outward.
        let answer = tl.range_cube(MIN + 1, 4 * MIN - 1).unwrap().unwrap();
        assert_eq!(answer.t0, MIN);
        assert_eq!(answer.t1, 4 * MIN);
        assert_eq!(answer.cube.row_count(), 150);

        // A range with no data is an empty answer, not an error.
        assert!(tl.range_cube(100 * MIN, 200 * MIN).unwrap().is_none());
        // An inverted range is an error.
        assert!(matches!(
            tl.range_cube(10, 10),
            Err(TimelineError::BadRange { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rolls_up_and_queries_stay_exact() {
        let dir = scratch("compact");
        let mut tl = open(&dir, config());
        // 13 buckets: three full fanout-4 windows + one extra.
        fill(&mut tl, 13, 40);
        let now = 13 * MIN;
        let report = tl.maintain(now).unwrap();
        assert_eq!(report.checkpointed, 13);
        // Three level-1 rollups ([0,4m), [4m,8m), [8m,12m)); the
        // level-2 window [0,12m) also closes and cascades.
        assert_eq!(report.compacted, 4);
        assert_eq!(tl.store().level_counts(2), vec![13, 3, 1]);

        // Full-range query must prefer the day rollup + fine tail, and
        // count every row exactly once.
        let answer = tl.range_cube(0, 13 * MIN).unwrap().unwrap();
        assert_eq!(answer.cube.row_count(), 13 * 40);
        assert_eq!(answer.segments_read, 2, "level-2 + one fine bucket");

        // Edge-straddling query: fine left edge, coarse middle.
        let answer = tl.range_cube(MIN, 9 * MIN).unwrap().unwrap();
        assert_eq!(answer.cube.row_count(), 8 * 40);
        // Buckets 1,2,3 fine; [4m,8m) rollup; bucket 8 fine.
        assert_eq!(answer.segments_read, 5);

        // Counts agree with re-folding the raw level-0 segments.
        let raw: u64 = tl
            .store()
            .index()
            .values()
            .filter(|m| m.level == 0 && m.start_ms >= MIN && m.end_ms <= 9 * MIN)
            .map(|m| m.rows)
            .sum();
        assert_eq!(raw, 8 * 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn late_data_reopens_until_rolled_up_then_drops() {
        let dir = scratch("late");
        let mut tl = open(&dir, config());
        fill(&mut tl, 5, 10);
        tl.maintain(5 * MIN).unwrap();
        // Bucket 4 is checkpointed but its fanout window [4m,8m) is
        // still open → late row accepted via reopen.
        assert!(tl.insert(4 * MIN + 5, &["checkout"], -1.0).unwrap());
        assert_eq!(tl.open_buckets(), 1);
        tl.checkpoint(6 * MIN).unwrap();
        let answer = tl.range_cube(4 * MIN, 5 * MIN).unwrap().unwrap();
        assert_eq!(answer.cube.row_count(), 11, "late row merged in");

        // Bucket 0 sits under the [0,4m) rollup → late row dropped.
        assert!(!tl.insert(1, &["checkout"], -1.0).unwrap());
        assert_eq!(tl.stats().late_dropped, 1);
        let answer = tl.range_cube(0, MIN).unwrap().unwrap();
        assert_eq!(answer.cube.row_count(), 10, "rolled bucket unchanged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_budget_folds_in_rollups_only() {
        let dir = scratch("budget");
        let mut tl = open(&dir, config().cell_budget(3));
        // 4 buckets × 8 distinct apps ≫ 3 cells.
        for b in 0..4u64 {
            for i in 0..32u64 {
                let app = format!("app{}", i % 8);
                tl.insert(b * MIN + i, &[app.as_str()], -((i % 5) as f64))
                    .unwrap();
            }
        }
        tl.maintain(4 * MIN).unwrap();
        let rollup = tl.store().get(1, 0).unwrap();
        assert!(rollup.cells <= 3, "rollup kept {} cells", rollup.cells);
        assert_eq!(rollup.rows, 128, "folding preserves row counts");
        assert!(tl.stats().values_folded > 0);
        // Base segments keep full resolution.
        assert_eq!(tl.store().get(0, 0).unwrap().cells, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_prunes_old_segments_everywhere() {
        let dir = scratch("retention");
        let mut tl = open(&dir, config().retention_ms(4 * MIN));
        fill(&mut tl, 10, 5);
        tl.checkpoint(10 * MIN).unwrap();
        // Horizon at 12m: cutoff 8m → buckets ending ≤ 8m expire.
        let removed = tl.enforce_retention(12 * MIN).unwrap();
        assert!(removed >= 8, "removed {removed}");
        assert!(tl.range_cube(0, 8 * MIN).unwrap().is_none());
        assert!(tl.range_cube(8 * MIN, 10 * MIN).unwrap().is_some());
        assert_eq!(tl.stats().retention_removed as usize, removed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_answers_bit_identically() {
        let dir = scratch("reopen");
        let mut tl = open(&dir, config());
        fill(&mut tl, 9, 30);
        tl.maintain(9 * MIN).unwrap();
        let before = tl.range_cube(MIN, 8 * MIN).unwrap().unwrap();
        let q_before = before
            .cube
            .rollup(&before.cube.no_filter())
            .unwrap()
            .quantile(0.9);
        drop(tl);

        // Reopen (as after a crash: segments are the durable state).
        let tl = open(&dir, config());
        let after = tl.range_cube(MIN, 8 * MIN).unwrap().unwrap();
        assert_eq!(after.segments_read, before.segments_read);
        assert_eq!(after.cube.row_count(), before.cube.row_count());
        let q_after = after
            .cube
            .rollup(&after.cube.no_filter())
            .unwrap()
            .quantile(0.9);
        assert_eq!(q_before.to_bits(), q_after.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_timeline_reports_cleanly() {
        let dir = scratch("empty");
        let mut tl = open(&dir, config());
        assert_eq!(tl.maintain(MIN).unwrap(), MaintenanceReport::default());
        assert!(tl.range_cube(0, MIN).unwrap().is_none());
        assert_eq!(tl.stats(), &TimelineStats::default());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
