//! The timeline segment wire format.
//!
//! A segment file holds one closed time bucket (or a rolled-up run of
//! buckets) as a single CRC-framed record, reusing the WAL's
//! [`frame_segment`] envelope so torn writes and bit rot are detected
//! the same way on both durability paths:
//!
//! | bytes | field |
//! |-------|-------|
//! | 4     | frame magic `MSG1` |
//! | 8     | frame epoch = segment `start_ms` |
//! | 4     | payload length |
//! | 4     | CRC-32 over epoch + length + payload |
//! | 1     | wire tag ([`TimelineWire::TimelineSegmentV1`]) |
//! | 1     | rollup `level` (0 = base bucket) |
//! | 8     | `start_ms` (inclusive) |
//! | 8     | `end_ms` (exclusive) |
//! | 4 + n | length-prefixed [`DynCube`] wire image |
//!
//! The tag lives in the same append-only registry as the sketch wire
//! tags (`lint/wire_tags.golden`): one flat namespace means a sketch
//! tag can never be recycled as a segment header or vice versa.

use crate::{Result, TimelineError};
use msketch_cube::{frame_segment, unframe_segment, DynCube};
use msketch_sketches::api::{Reader, Writer};

/// Wire tags owned by the timeline crate, pinned append-only in
/// `lint/wire_tags.golden` alongside the sketch kind tags — codes are
/// unique across *both* enums, so no tag is ever reused across
/// formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TimelineWire {
    /// Version 1 segment header: level, time range, cube image.
    TimelineSegmentV1 = 10,
}

impl TimelineWire {
    /// Stable wire code for this tag.
    pub fn code(self) -> u8 {
        self as u8
    }
}

/// Decoded segment metadata: where the segment sits in the rollup
/// hierarchy and which half-open time range it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Rollup level: 0 = one base bucket, `i+1` = `fanouts[i]` level-`i`
    /// segments merged.
    pub level: u8,
    /// Inclusive start of the covered range (ms).
    pub start_ms: u64,
    /// Exclusive end of the covered range (ms).
    pub end_ms: u64,
}

/// Encode a segment file image: header + cube, CRC-framed.
pub fn encode_segment(header: SegmentHeader, cube: &DynCube) -> Vec<u8> {
    let cube_bytes = cube.to_bytes();
    let mut w = Writer::with_capacity(cube_bytes.len() + 32);
    w.u8(TimelineWire::TimelineSegmentV1.code());
    w.u8(header.level);
    w.u64(header.start_ms);
    w.u64(header.end_ms);
    w.bytes(&cube_bytes);
    frame_segment(header.start_ms, &w.into_bytes())
}

/// Decode a segment file image produced by [`encode_segment`].
///
/// `path` only labels errors. Rejects anything that is not exactly one
/// well-formed frame: torn or CRC-damaged frames, trailing garbage,
/// unknown tags, inverted ranges, and frame epochs that disagree with
/// the header's `start_ms`.
pub fn decode_segment(path: &str, bytes: &[u8]) -> Result<(SegmentHeader, DynCube)> {
    let corrupt = |detail: String| TimelineError::Corrupt {
        path: path.to_string(),
        detail,
    };
    let frame = unframe_segment(bytes, 0)
        .map_err(|e| corrupt(format!("bad frame: {e:?}")))?
        .ok_or_else(|| corrupt("empty segment file".to_string()))?;
    if frame.frame_len != bytes.len() {
        return Err(corrupt(format!(
            "trailing bytes after frame ({} of {})",
            frame.frame_len,
            bytes.len()
        )));
    }
    let mut r = Reader::new(frame.payload);
    let wire = |e: msketch_sketches::SketchError| corrupt(format!("bad header: {e}"));
    let tag = r.u8().map_err(wire)?;
    if tag != TimelineWire::TimelineSegmentV1.code() {
        return Err(corrupt(format!("unknown segment wire tag {tag}")));
    }
    let header = SegmentHeader {
        level: r.u8().map_err(wire)?,
        start_ms: r.u64().map_err(wire)?,
        end_ms: r.u64().map_err(wire)?,
    };
    if header.end_ms <= header.start_ms {
        return Err(corrupt(format!(
            "inverted range [{}, {})",
            header.start_ms, header.end_ms
        )));
    }
    if frame.epoch != header.start_ms {
        return Err(corrupt(format!(
            "frame epoch {} disagrees with header start {}",
            frame.epoch, header.start_ms
        )));
    }
    let cube_bytes = r.bytes().map_err(wire)?;
    r.finish().map_err(wire)?;
    let cube =
        DynCube::from_bytes(cube_bytes).map_err(|e| corrupt(format!("bad cube payload: {e}")))?;
    Ok((header, cube))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msketch_sketches::SketchSpec;

    fn sample_cube() -> DynCube {
        let mut cube = DynCube::from_spec(SketchSpec::moments(8), &["app", "region"]);
        for i in 0..500u64 {
            cube.insert(&[["checkout", "search"][(i % 2) as usize], "eu"], i as f64)
                .unwrap();
        }
        cube
    }

    #[test]
    fn segment_round_trips() {
        let cube = sample_cube();
        let header = SegmentHeader {
            level: 1,
            start_ms: 3_600_000,
            end_ms: 7_200_000,
        };
        let bytes = encode_segment(header, &cube);
        let (decoded_header, decoded) = decode_segment("x.seg", &bytes).unwrap();
        assert_eq!(decoded_header, header);
        assert_eq!(decoded.row_count(), cube.row_count());
        let a = cube.rollup(&cube.no_filter()).unwrap();
        let b = decoded.rollup(&decoded.no_filter()).unwrap();
        assert_eq!(a.quantile(0.9).to_bits(), b.quantile(0.9).to_bits());
    }

    #[test]
    fn corruption_is_detected() {
        let cube = sample_cube();
        let header = SegmentHeader {
            level: 0,
            start_ms: 0,
            end_ms: 60_000,
        };
        let good = encode_segment(header, &cube);

        // Flipped payload byte: CRC catches it.
        let mut bad = good.clone();
        let at = bad.len() - 3;
        bad[at] ^= 0xFF;
        assert!(matches!(
            decode_segment("x.seg", &bad),
            Err(TimelineError::Corrupt { .. })
        ));

        // Truncated file: torn frame.
        assert!(matches!(
            decode_segment("x.seg", &good[..good.len() - 10]),
            Err(TimelineError::Corrupt { .. })
        ));

        // Trailing garbage after a valid frame.
        let mut trailing = good.clone();
        trailing.extend_from_slice(b"junk");
        let Err(err) = decode_segment("x.seg", &trailing) else {
            panic!("trailing garbage accepted");
        };
        assert!(err.to_string().contains("trailing"), "{err}");

        // Empty file.
        assert!(decode_segment("x.seg", &[]).is_err());

        // Inverted range.
        let inverted = encode_segment(
            SegmentHeader {
                level: 0,
                start_ms: 60_000,
                end_ms: 60_000,
            },
            &cube,
        );
        let Err(err) = decode_segment("x.seg", &inverted) else {
            panic!("inverted range accepted");
        };
        assert!(err.to_string().contains("inverted"), "{err}");
    }

    #[test]
    fn wire_tag_is_pinned() {
        // The registry in lint/wire_tags.golden pins this code; the
        // enum and golden must agree (msketch-lint enforces it too).
        assert_eq!(TimelineWire::TimelineSegmentV1.code(), 10);
    }
}
