//! Range query planning: pick the minimal set of pre-rolled segments
//! covering `[t0, t1)`.
//!
//! The planner walks a cursor from `t0` to `t1`, at each step taking
//! the *coarsest* segment that starts exactly at the cursor and ends
//! inside the range — so covers come out coarse in the middle and fine
//! at the edges. With fanouts `f1 … fL`, a range of `n` base buckets
//! needs at most `2·(f1−1) + 2·(f2−1) + … + n / Π fi` segments once
//! fully compacted: for the default 1m/60/24 hierarchy a 7-day query
//! reads ≤ 7 day segments + 46 hour segments + 118 minute segments
//! instead of 10 080 panes. Buckets that saw no rows simply have no
//! segment; the cursor skips them one base width at a time.

use crate::store::SegmentMeta;
use std::collections::BTreeMap;

/// Plans `[t0, t1)` covers against a segment index.
///
/// Holds only the shape of the hierarchy (base width, level count);
/// the segment index is passed per call so the planner can be reused
/// across maintenance cycles without invalidation.
#[derive(Debug, Clone)]
pub struct RangePlanner {
    bucket_ms: u64,
    max_level: u8,
}

impl RangePlanner {
    /// A planner for a hierarchy with the given base bucket width and
    /// coarsest rollup level.
    pub fn new(bucket_ms: u64, max_level: u8) -> Self {
        RangePlanner {
            bucket_ms: bucket_ms.max(1),
            max_level,
        }
    }

    /// Snap an arbitrary `[t0, t1)` onto base bucket boundaries: `t0`
    /// floors, `t1` ceils, so the snapped range covers every bucket the
    /// raw range touches. Returns `None` when the range is empty or
    /// inverted.
    pub fn snap(&self, t0: u64, t1: u64) -> Option<(u64, u64)> {
        if t1 <= t0 {
            return None;
        }
        let w = self.bucket_ms;
        let lo = t0 - t0 % w;
        let hi = match t1 % w {
            0 => t1,
            rem => t1.saturating_add(w - rem),
        };
        Some((lo, hi))
    }

    /// The minimal segment cover of `[t0, t1)` (after snapping), as
    /// `(level, start_ms)` keys into `index`, in time order.
    ///
    /// Each selected segment lies fully inside the snapped range and
    /// segments never overlap, so merging them in order re-aggregates
    /// every persisted row of the range exactly once.
    pub fn cover(
        &self,
        index: &BTreeMap<(u8, u64), SegmentMeta>,
        t0: u64,
        t1: u64,
    ) -> Vec<(u8, u64)> {
        let Some((lo, hi)) = self.snap(t0, t1) else {
            return Vec::new();
        };
        plan_cover(index, lo, hi, self.bucket_ms, self.max_level)
    }
}

/// Greedy cover selection over an index keyed by `(level, start_ms)`
/// — the core of [`RangePlanner::cover`], exposed for tests that
/// build synthetic indexes. `t0`/`t1` must already be bucket-aligned.
pub fn plan_cover(
    index: &BTreeMap<(u8, u64), SegmentMeta>,
    t0: u64,
    t1: u64,
    bucket_ms: u64,
    max_level: u8,
) -> Vec<(u8, u64)> {
    let bucket_ms = bucket_ms.max(1);
    let mut cover = Vec::new();
    let mut cursor = t0;
    while cursor < t1 {
        let mut picked = None;
        for level in (0..=max_level).rev() {
            if let Some(meta) = index.get(&(level, cursor)) {
                if meta.end_ms <= t1 {
                    picked = Some((level, meta.end_ms));
                    break;
                }
            }
        }
        match picked {
            Some((level, end)) => {
                cover.push((level, cursor));
                cursor = end;
            }
            // No segment starts here (empty or unpersisted bucket):
            // advance one base bucket.
            None => cursor = cursor.saturating_add(bucket_ms),
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Index stub: segments at the given (level, start, end) triples.
    fn index(entries: &[(u8, u64, u64)]) -> BTreeMap<(u8, u64), SegmentMeta> {
        entries
            .iter()
            .map(|&(level, start_ms, end_ms)| {
                (
                    (level, start_ms),
                    SegmentMeta {
                        level,
                        start_ms,
                        end_ms,
                        rows: 1,
                        cells: 1,
                        bytes: 1,
                        file: format!("seg-L{level}-{start_ms}-{end_ms}.seg"),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn snap_rounds_outward() {
        let planner = RangePlanner::new(100, 2);
        assert_eq!(planner.snap(150, 420), Some((100, 500)));
        assert_eq!(planner.snap(100, 400), Some((100, 400)));
        assert_eq!(planner.snap(400, 400), None);
        assert_eq!(planner.snap(500, 400), None);
    }

    #[test]
    fn cover_prefers_coarse_middles_and_fine_edges() {
        // 10-wide base buckets, fanout 10. All thirty base buckets in
        // [0, 300) exist; [0,100) and [100,200) are also rolled up.
        let mut entries: Vec<(u8, u64, u64)> =
            (0..30u64).map(|b| (0, b * 10, b * 10 + 10)).collect();
        entries.push((1, 0, 100));
        entries.push((1, 100, 200));
        let idx = index(&entries);

        // Query [10, 230): fine buckets up to the first rollup
        // boundary, one coarse segment, then fine again — the first
        // rollup [0,100) starts before the cursor so its children
        // serve the left edge.
        let cover = plan_cover(&idx, 10, 230, 10, 1);
        let mut expect: Vec<(u8, u64)> = (1..10u64).map(|b| (0, b * 10)).collect();
        expect.push((1, 100));
        expect.extend((20..23u64).map(|b| (0, b * 10)));
        assert_eq!(
            cover, expect,
            "left edge fine, middle coarse, right edge fine"
        );

        // A fully aligned query takes both rollups and only the
        // trailing fine buckets.
        let full = plan_cover(&idx, 0, 300, 10, 1);
        assert_eq!(full[0], (1, 0));
        assert_eq!(full[1], (1, 100));
        assert_eq!(full.len(), 2 + 10);
    }

    #[test]
    fn cover_never_reads_outside_the_range() {
        // A coarse segment [0, 100) must not serve query [0, 50).
        let idx = index(&[(1, 0, 100), (0, 0, 10), (0, 10, 20), (0, 40, 50)]);
        let cover = plan_cover(&idx, 0, 50, 10, 1);
        assert_eq!(cover, vec![(0, 0), (0, 10), (0, 40)]);
    }

    #[test]
    fn empty_index_or_range_yields_empty_cover() {
        let idx = index(&[]);
        assert!(plan_cover(&idx, 0, 1000, 10, 2).is_empty());
        let idx = index(&[(0, 0, 10)]);
        assert!(plan_cover(&idx, 500, 500, 10, 2).is_empty());
    }

    #[test]
    fn seven_day_cover_is_logarithmic_not_linear() {
        // A fully compacted nine-day store of 1m base buckets under
        // the default 60/24 hierarchy: minutes, hours, and days all on
        // disk (rollups coexist with their children).
        const MIN: u64 = 60_000;
        const HOUR: u64 = 60 * MIN;
        const DAY: u64 = 24 * HOUR;
        let mut entries = Vec::new();
        for m in 0..(9 * 24 * 60) {
            entries.push((0u8, m * MIN, (m + 1) * MIN));
        }
        for h in 0..(9 * 24) {
            entries.push((1u8, h * HOUR, (h + 1) * HOUR));
        }
        for d in 0..9u64 {
            entries.push((2u8, d * DAY, (d + 1) * DAY));
        }
        let idx = index(&entries);

        // A 7-day query offset by 90 minutes: fine granularity is paid
        // only at the edges — ≤ 59 minutes + 23 hours per edge, days
        // in the middle — versus 10 080 raw panes.
        let t0 = DAY + 90 * MIN;
        let t1 = t0 + 7 * DAY;
        let cover = plan_cover(&idx, t0, t1, MIN, 2);
        let n_buckets = (7 * DAY / MIN) as usize;
        assert_eq!(n_buckets, 10_080);
        assert!(
            cover.len() <= 2 * 59 + 2 * 23 + 7,
            "cover of {} segments exceeds the hierarchy bound",
            cover.len()
        );
        assert!(cover.len() * 50 < n_buckets, "not O(log n)-ish");
        // Covered spans must tile the range exactly: contiguous,
        // non-overlapping, ending at t1 (every bucket exists here).
        let mut cursor = t0;
        for &(level, start) in &cover {
            assert_eq!(start, cursor, "gap or overlap at {start}");
            cursor = idx[&(level, start)].end_ms;
        }
        assert_eq!(cursor, t1);
        // And the middle really is coarse: at least five day segments.
        let days = cover.iter().filter(|&&(level, _)| level == 2).count();
        assert!(days >= 5, "only {days} day segments in a 7-day cover");
    }
}
