//! Range-equivalence properties: answers assembled from the planner's
//! minimal segment cover must be *bit-exact* versus re-folding the raw
//! per-bucket cubes — for any row stream, any `[t0, t1)`, ranges that
//! straddle compacted rollup levels, and rollups whose rare cells were
//! folded into `<other>` by the cell budget.
//!
//! Exactness is decidable here because the generated metrics are
//! non-positive integers: every power sum is an exactly-representable
//! integer (log sums stay zero), so folding is associative bit for bit
//! and any regrouping of the merge tree must reproduce identical
//! quantile estimates.

use msketch_cube::{DynCube, QueryEngine};
use msketch_engine::FsyncPolicy;
use msketch_sketches::SketchSpec;
use msketch_timeline::{Timeline, TimelineConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

const BUCKET_MS: u64 = 1_000;
/// Two full level-2 windows under fanouts [4, 3] — ranges can straddle
/// base, level-1, and level-2 segments.
const N_BUCKETS: u64 = 24;
const SPAN_MS: u64 = N_BUCKETS * BUCKET_MS;
const PHIS: [f64; 3] = [0.1, 0.5, 0.9];
const DIMS: [&str; 2] = ["app", "region"];

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let case = CASE.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("msketch-timeline-prop-{tag}-{case}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(cell_budget: usize) -> TimelineConfig {
    TimelineConfig::default()
        .bucket_ms(BUCKET_MS)
        .fanouts(&[4, 3])
        .cell_budget(cell_budget)
        .fsync(FsyncPolicy::Never)
}

/// Quantiles of the cube's global rollup (`None` for an empty cube).
fn global_quantiles(cube: &DynCube) -> Option<Vec<f64>> {
    if cube.row_count() == 0 {
        return None;
    }
    Some(
        QueryEngine::quantiles(cube, &cube.no_filter(), &PHIS)
            .expect("quantiles")
            .values,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole equivalence: cover answers == raw re-fold, bit for
    /// bit, across random streams, random ranges, and random budgets.
    #[test]
    fn cover_answers_match_raw_refold(
        rows in prop::collection::vec(
            (0u8..4, 0u8..3, 0u8..17, 0u64..SPAN_MS), 20..150),
        ranges in prop::collection::vec(
            (0u64..SPAN_MS + 2 * BUCKET_MS, 1u64..SPAN_MS), 8..=8),
        budget in 0usize..5,
    ) {
        let dir = fresh_dir("refold");
        let spec = SketchSpec::moments(8);
        let (mut timeline, _) =
            Timeline::open(&dir, spec.clone(), &DIMS, config(budget)).expect("open");

        // Mirror every insert into a raw per-bucket cube map — the
        // ground truth the planner must reproduce.
        let mut raw: BTreeMap<u64, DynCube> = BTreeMap::new();
        for &(app, region, k, ts) in &rows {
            let metric = -f64::from(k);
            let (a, r) = (format!("app-{app}"), format!("r-{region}"));
            timeline.insert(ts, &[&a, &r], metric).expect("insert");
            raw.entry(ts - ts % BUCKET_MS)
                .or_insert_with(|| DynCube::from_spec(spec.clone(), &DIMS))
                .insert(&[&a, &r], metric)
                .expect("raw insert");
        }
        // Close every bucket and roll the hierarchy all the way up, so
        // covers mix base segments with level-1/level-2 rollups.
        timeline.maintain(SPAN_MS * 1_000).expect("maintain");

        for &(t0, len) in &ranges {
            let t1 = t0 + len;
            // Snap outward exactly like the planner: the answer covers
            // every bucket the raw range touches.
            let lo = t0 - t0 % BUCKET_MS;
            let hi = t1 + (BUCKET_MS - t1 % BUCKET_MS) % BUCKET_MS;
            let mut expected = DynCube::from_spec(spec.clone(), &DIMS);
            let mut buckets_with_rows = 0usize;
            for (_, cube) in raw.range(lo..hi) {
                expected.merge_cube(cube).expect("refold merge");
                buckets_with_rows += 1;
            }

            let answer = timeline.range_cube(t0, t1).expect("range_cube");
            if expected.row_count() == 0 {
                if let Some(a) = answer {
                    prop_assert_eq!(a.cube.row_count(), 0, "rows out of thin air");
                }
            } else {
                let a = answer.expect("non-empty range must answer");
                prop_assert_eq!(a.cube.row_count(), expected.row_count());
                // Every cover segment holds at least one non-empty
                // bucket, so the cover is never larger than the raw
                // bucket list it replaces.
                prop_assert!(
                    a.segments_read <= buckets_with_rows,
                    "cover {} > {} raw buckets", a.segments_read, buckets_with_rows
                );
                let got = global_quantiles(&a.cube).expect("answer quantiles");
                let want = global_quantiles(&expected).expect("refold quantiles");
                for (g, w) in got.iter().zip(&want) {
                    prop_assert_eq!(g.to_bits(), w.to_bits(), "{g} != {w}");
                }
            }

            // The plan itself tiles the snapped range: time-ordered,
            // non-overlapping, inside [lo, hi).
            let plan = timeline.plan(t0, t1).expect("plan");
            let mut cursor = lo;
            for meta in &plan {
                prop_assert!(meta.start_ms >= cursor, "overlap at {}", meta.start_ms);
                prop_assert!(meta.end_ms <= hi, "segment leaks past the range");
                cursor = meta.end_ms;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Reopening the store changes nothing: a recovered timeline
    /// answers every range with the same bits as the writer did.
    #[test]
    fn recovered_store_answers_identically(
        rows in prop::collection::vec(
            (0u8..4, 0u8..3, 0u8..17, 0u64..SPAN_MS), 20..80),
        ranges in prop::collection::vec(
            (0u64..SPAN_MS, 1u64..SPAN_MS), 4..=4),
    ) {
        let dir = fresh_dir("reopen");
        let spec = SketchSpec::moments(8);
        let (mut timeline, _) =
            Timeline::open(&dir, spec.clone(), &DIMS, config(0)).expect("open");
        for &(app, region, k, ts) in &rows {
            let (a, r) = (format!("app-{app}"), format!("r-{region}"));
            timeline.insert(ts, &[&a, &r], -f64::from(k)).expect("insert");
        }
        timeline.maintain(SPAN_MS * 1_000).expect("maintain");

        let before: Vec<_> = ranges
            .iter()
            .map(|&(t0, len)| {
                timeline
                    .range_cube(t0, t0 + len)
                    .expect("range")
                    .and_then(|a| global_quantiles(&a.cube))
            })
            .collect();
        let segments = timeline.store().index().len();
        drop(timeline);

        let (reopened, recovery) =
            Timeline::open(&dir, spec, &DIMS, config(0)).expect("reopen");
        prop_assert_eq!(recovery.segments_loaded, segments);
        prop_assert_eq!(recovery.corrupt_skipped, 0);
        for (&(t0, len), want) in ranges.iter().zip(&before) {
            let got = reopened
                .range_cube(t0, t0 + len)
                .expect("range")
                .and_then(|a| global_quantiles(&a.cube));
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    for (a, b) in g.iter().zip(w) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
                (got, want) => prop_assert!(false, "{got:?} != {want:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A scaled-down replica of the acceptance shape (1m/1h/1d becomes
/// 10ms/120ms/960ms): five "days" of per-bucket rows, fully compacted,
/// then a three-"day" query offset into day one must read a
/// logarithmic cover — fine at the edges, whole days in the middle —
/// instead of one segment per base bucket.
#[test]
fn multi_day_cover_is_logarithmic_end_to_end() {
    const B: u64 = 10;
    const DAY: u64 = 96 * B; // 12 × 8 base buckets
    let dir = fresh_dir("cover");
    let config = TimelineConfig::default()
        .bucket_ms(B)
        .fanouts(&[12, 8])
        .fsync(FsyncPolicy::Never);
    let (mut timeline, _) =
        Timeline::open(&dir, SketchSpec::moments(8), &DIMS, config).expect("open");
    for b in 0..480u64 {
        timeline
            .insert(b * B + 1, &["app-0", "r-0"], -((b % 7) as f64))
            .expect("insert");
    }
    timeline.maintain(1_000_000).expect("maintain");

    let t0 = DAY + 17 * B;
    let t1 = t0 + 3 * DAY;
    let answer = timeline
        .range_cube(t0, t1)
        .expect("range")
        .expect("non-empty");
    assert_eq!(answer.cube.row_count(), 288, "one row per covered bucket");
    // ≤ 2·(12−1) + 2·(8−1) + 3 segments versus 288 raw buckets.
    assert!(
        answer.segments_read <= 39,
        "cover of {} segments is not logarithmic",
        answer.segments_read
    );
    let _ = std::fs::remove_dir_all(&dir);
}
