//! Deterministic fault injection for the timeline: torn segment
//! writes and failed compaction passes, driven through the `failpoint`
//! registry at the two sites pinned in `lint/failpoints.golden`
//! (`timeline::segment_write`, `timeline::compact`).
//!
//! Failpoints are process-global, so every test that arms one holds
//! [`FAILPOINT_LOCK`] for its whole body.

use msketch_cube::QueryEngine;
use msketch_engine::FsyncPolicy;
use msketch_sketches::SketchSpec;
use msketch_timeline::{Timeline, TimelineConfig, TimelineError};
use std::sync::Mutex;

static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

const BUCKET_MS: u64 = 1_000;
const DIMS: [&str; 2] = ["app", "region"];
/// Far past every bucket end: maintenance closes and rolls everything.
const LATER: u64 = 1_000_000_000;

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("msketch-timeline-fault-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> TimelineConfig {
    TimelineConfig::default()
        .bucket_ms(BUCKET_MS)
        .fanouts(&[4, 3])
        .fsync(FsyncPolicy::Never)
}

fn open(dir: &std::path::Path) -> (Timeline, msketch_timeline::StoreRecovery) {
    Timeline::open(dir, SketchSpec::moments(8), &DIMS, config()).expect("open timeline")
}

/// Fill `buckets` with `per_bucket` rows each, starting at bucket 0.
fn fill(timeline: &mut Timeline, buckets: u64, per_bucket: u64) {
    for b in 0..buckets {
        for i in 0..per_bucket {
            let row = [["app-a", "app-b"][(i % 2) as usize], "eu"];
            timeline
                .insert(b * BUCKET_MS + i * 10, &row, -((i % 5) as f64))
                .expect("insert");
        }
    }
}

/// Median of the global rollup over `[t0, t1)`, as bits.
fn median_bits(timeline: &Timeline, t0: u64, t1: u64) -> u64 {
    let answer = timeline
        .range_cube(t0, t1)
        .expect("range")
        .expect("non-empty range");
    QueryEngine::quantiles(&answer.cube, &answer.cube.no_filter(), &[0.5])
        .expect("quantiles")
        .values[0]
        .to_bits()
}

#[test]
fn torn_segment_write_fails_the_checkpoint_and_recovery_cleans_up() {
    let _guard = FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = fresh_dir("torn-write");
    let (mut timeline, _) = open(&dir);

    // Two durable buckets first: the pre-crash state to preserve.
    fill(&mut timeline, 2, 8);
    assert_eq!(timeline.checkpoint(LATER).expect("checkpoint"), 2);
    let before = median_bits(&timeline, 0, 2 * BUCKET_MS);

    // The next bucket's segment write tears mid-file (the failpoint
    // fires after the tmp file exists, before the rename): the
    // checkpoint must surface the error, not swallow it.
    for i in 0..4u64 {
        timeline
            .insert(2 * BUCKET_MS + i, &["app-a", "eu"], -1.0)
            .expect("insert");
    }
    failpoint::cfg("timeline::segment_write", "return").unwrap();
    let torn = timeline.checkpoint(LATER);
    failpoint::remove("timeline::segment_write");
    assert!(
        matches!(torn, Err(TimelineError::Io(_))),
        "torn write must fail the checkpoint"
    );

    // Crash (drop) and recover: the torn tmp file is swept, both
    // durable segments survive, and the pre-crash answer is
    // bit-identical. The unpersisted bucket is gone — the checkpoint
    // is the durability boundary.
    drop(timeline);
    let (recovered, recovery) = open(&dir);
    assert_eq!(recovery.segments_loaded, 2, "{recovery:?}");
    assert!(recovery.tmp_removed >= 1, "{recovery:?}");
    assert_eq!(recovery.corrupt_skipped, 0, "{recovery:?}");
    assert_eq!(median_bits(&recovered, 0, 2 * BUCKET_MS), before);
    assert!(recovered
        .range_cube(2 * BUCKET_MS, 3 * BUCKET_MS)
        .expect("range")
        .is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_compaction_is_idempotently_retried_and_answers_never_change() {
    let _guard = FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = fresh_dir("compact-retry");
    let (mut timeline, _) = open(&dir);

    // Eight checkpointed base buckets: two full level-1 windows.
    fill(&mut timeline, 8, 6);
    assert_eq!(timeline.checkpoint(LATER).expect("checkpoint"), 8);
    let before = median_bits(&timeline, 0, 8 * BUCKET_MS);

    // First compaction pass dies at the failpoint; answers must still
    // come from the intact base segments.
    failpoint::cfg("timeline::compact", "return").unwrap();
    let failed = timeline.compact(LATER);
    failpoint::remove("timeline::compact");
    assert!(
        matches!(failed, Err(TimelineError::Io(_))),
        "armed compaction must fail"
    );
    assert_eq!(median_bits(&timeline, 0, 8 * BUCKET_MS), before);

    // The retry completes the hierarchy — children retained, parents
    // written once — and the cover now answers from rollups with the
    // same bits.
    let written = timeline.compact(LATER).expect("retry compaction");
    assert!(written >= 3, "expected level-1 and level-2 rollups");
    let levels = timeline.store().level_counts(timeline.config().max_level());
    assert_eq!(levels, vec![8, 2, 1]);
    let answer = timeline
        .range_cube(0, 8 * BUCKET_MS)
        .expect("range")
        .expect("non-empty");
    assert!(
        answer.segments_read < 8,
        "cover still reads {} base segments",
        answer.segments_read
    );
    assert_eq!(median_bits(&timeline, 0, 8 * BUCKET_MS), before);

    // A third pass is a no-op: compaction is write-parent-if-missing.
    assert_eq!(timeline.compact(LATER).expect("idempotent pass"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
