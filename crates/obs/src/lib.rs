//! Self-hosting observability for the msketch workspace.
//!
//! The system observes itself with the paper's own data structure:
//! latency recorders are striped [`moments_sketch::MomentsSketch`]es
//! (mergeable across threads exactly as shard panes are), queried at
//! scrape time through the max-entropy solver, so `GET /metrics` serves
//! p50/p95/p99 series computed by the sketch being benchmarked.
//!
//! Three pieces, all dependency-free beyond the workspace's own crates:
//!
//! - [`registry`]: counters, gauges, and moment-sketch latency
//!   recorders behind cheap cloneable handles; Prometheus text
//!   exposition via [`Registry::render`]. Relaxed-atomic fast paths,
//!   one global arming gate (same discipline as `compat/failpoint`).
//! - [`trace`]: structured spans rooted per request / per refresh,
//!   propagated through lower layers by a thread local (no API
//!   threading), drained by `GET /trace?last=N`; slow traces and
//!   warn events are mirrored to stderr as JSON lines.
//! - [`Obs`]: the bundle the server constructs and hands to the engine
//!   (`ShardedCube::set_obs`).
//!
//! Metric names registered with literal strings are pinned append-only
//! in `lint/metrics.golden` by the `metrics` lint rule, like wire tags
//! and failpoint sites.

pub mod registry;
pub mod trace;

pub use registry::{Counter, Gauge, Recorder, Registry, Timer, EXPOSED_QUANTILES};
pub use trace::{
    span, EventRecord, FieldValue, Level, RootSpan, SpanGuard, TraceRecord, TraceSink,
};

use std::sync::Arc;

/// The observability bundle threaded through the stack: one metrics
/// registry plus one trace sink. Cloneable handle; clones share state.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Metrics registry backing `/metrics` and `/stats`.
    pub registry: Arc<Registry>,
    /// Trace ring + slow-query/event log backing `/trace`.
    pub trace: Arc<TraceSink>,
}

impl Obs {
    /// A fresh, armed bundle with default capacities.
    pub fn new() -> Obs {
        Obs::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("test_total", &[("route", "/x")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, labels) yields the same underlying series.
        assert_eq!(reg.counter("test_total", &[("route", "/x")]).get(), 5);
        let g = reg.gauge("test_rows", &[]);
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = Registry::new();
        let a = reg.counter("t_total", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("t_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn recorder_quantiles_track_distribution() {
        let reg = Registry::new();
        let rec = reg.recorder("lat_seconds", &[]);
        for i in 1..=10_000 {
            rec.observe(i as f64 / 10_000.0);
        }
        let qs = rec.quantiles(&[0.5, 0.99]);
        assert!((qs[0] - 0.5).abs() < 0.05, "p50 {}", qs[0]);
        assert!((qs[1] - 0.99).abs() < 0.05, "p99 {}", qs[1]);
    }

    #[test]
    fn disarmed_timer_records_nothing() {
        let reg = Registry::new();
        let rec = reg.recorder("lat_seconds", &[]);
        reg.set_enabled(false);
        rec.start().stop();
        assert_eq!(rec.count(), 0);
        reg.set_enabled(true);
        rec.start().stop();
        assert_eq!(rec.count(), 1);
    }

    #[test]
    fn cancelled_timer_records_nothing() {
        let reg = Registry::new();
        let rec = reg.recorder("lat_seconds", &[]);
        rec.start().cancel();
        assert_eq!(rec.count(), 0);
    }

    #[test]
    fn render_has_type_lines_and_series() {
        let reg = Registry::new();
        reg.counter("c_total", &[("route", "/q")]).add(3);
        reg.gauge("g_rows", &[]).set(7);
        let rec = reg.recorder("r_seconds", &[]);
        rec.observe(0.25);
        let text = reg.render();
        assert!(text.contains("# TYPE c_total counter\n"));
        assert!(text.contains("c_total{route=\"/q\"} 3\n"));
        assert!(text.contains("# TYPE g_rows gauge\n"));
        assert!(text.contains("g_rows 7\n"));
        assert!(text.contains("# TYPE r_seconds summary\n"));
        assert!(text.contains("r_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("r_seconds_sum 0.25\n"));
        assert!(text.contains("r_seconds_count 1\n"));
    }

    #[test]
    fn spans_nest_and_land_in_ring() {
        let sink = TraceSink::new(8);
        {
            let mut root = sink.root_span("http::/quantile");
            root.field("q", "0.99");
            {
                let mut child = span("engine::snapshot");
                child.field("cells", "12");
                let _grand = span("engine::wal_append");
            }
        }
        let traces = sink.recent_traces(10);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.root, "http::/quantile");
        assert_eq!(t.spans.len(), 3);
        // Completion order: grandchild, child, root.
        assert_eq!(t.spans[0].name, "engine::wal_append");
        assert_eq!(t.spans[1].name, "engine::snapshot");
        assert_eq!(t.spans[2].name, "http::/quantile");
        // Parent chain: root=1, child parents root, grandchild the child.
        assert_eq!(t.spans[2].id, 1);
        assert_eq!(t.spans[1].parent, 1);
        assert_eq!(t.spans[0].parent, t.spans[1].id);
        let json = t.to_json();
        assert!(json.contains("\"trace\":\"http::/quantile\""));
        assert!(json.contains("\"fields\":{\"q\":\"0.99\"}"));
    }

    #[test]
    fn span_without_root_is_noop() {
        let sink = TraceSink::new(8);
        {
            let _orphan = span("engine::snapshot");
        }
        assert_eq!(sink.trace_count(), 0);
    }

    #[test]
    fn nested_root_degrades_to_child() {
        let sink = TraceSink::new(8);
        {
            let _outer = sink.root_span("http::/refresh");
            let _inner = sink.root_span("engine::refresh");
        }
        let traces = sink.recent_traces(10);
        assert_eq!(traces.len(), 1, "nested root must not open a second trace");
        assert_eq!(traces[0].spans.len(), 2);
    }

    #[test]
    fn slow_threshold_marks_traces() {
        let sink = TraceSink::new(8);
        sink.set_slow_threshold(Duration::from_micros(1));
        {
            let _root = sink.root_span("http::/quantile");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(sink.recent_traces(1)[0].slow);
    }

    #[test]
    fn events_ring_and_json() {
        let sink = TraceSink::new(8);
        sink.event(
            Level::Warn,
            "engine::worker_restart",
            &[("shard", "3".to_string())],
        );
        let events = sink.recent_events(10);
        assert_eq!(events.len(), 1);
        let json = events[0].to_json();
        assert!(json.contains("\"event\":\"engine::worker_restart\""));
        assert!(json.contains("\"level\":\"warn\""));
        assert!(json.contains("\"shard\":\"3\""));
    }

    #[test]
    fn trace_ring_is_bounded() {
        let sink = TraceSink::new(2);
        for _ in 0..5 {
            let _root = sink.root_span("http::/x");
        }
        assert_eq!(sink.trace_count(), 2);
    }
}
