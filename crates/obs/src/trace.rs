//! Structured request tracing: spans, traces, and warn-level events.
//!
//! A trace is rooted by [`TraceSink::root_span`] (the server does this
//! per request, the refresher per refresh). While a root is open on a
//! thread, any code on that thread — engine snapshot, WAL append/fsync,
//! cascade evaluation, timeline cover planning — can open child spans
//! with the free function [`span`] without any API threading: the
//! active trace lives in a thread local, and `span` is a no-op (one
//! thread-local probe) when no trace is open.
//!
//! Completed traces land in a bounded ring drained by `GET
//! /trace?last=N`; traces slower than the sink's slow threshold are
//! also written to stderr as one JSON line (the slow-query log), as are
//! warn-level [`TraceSink::event`]s (WAL append errors, worker
//! restarts, rows lost) at the moment they happen.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Severity of a [`TraceSink::event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Routine lifecycle information.
    Info,
    /// Something was lost or degraded; mirrored to stderr immediately.
    Warn,
}

impl Level {
    /// Lowercase name used in the JSON encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// A span-field value. Numeric fields are stored unboxed so annotating
/// a hot-path span with a count costs no allocation; they render as
/// bare JSON numbers.
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// Free-form text (rendered as a JSON string).
    Str(String),
    /// An unsigned count (rendered as a JSON number).
    U64(u64),
    /// A flag (rendered as a JSON boolean).
    Bool(bool),
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<u16> for FieldValue {
    fn from(v: u16) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl FieldValue {
    fn to_json(&self, out: &mut String) {
        match self {
            FieldValue::Str(s) => {
                out.push('"');
                json_escape(s, out);
                out.push('"');
            }
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// One completed span within a trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span id, unique within the trace; the root is always 1.
    pub id: u64,
    /// Parent span id; 0 for the root.
    pub parent: u64,
    /// Stage name, e.g. `engine::wal_fsync`.
    pub name: &'static str,
    /// Microseconds from trace start to span start (monotonic clock).
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Key=value annotations attached via [`SpanGuard::field`].
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    fn to_json(&self, out: &mut String) {
        out.push_str("{\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&self.parent.to_string());
        out.push_str(",\"name\":\"");
        json_escape(self.name, out);
        out.push_str("\",\"start_us\":");
        out.push_str(&self.start_us.to_string());
        out.push_str(",\"dur_us\":");
        out.push_str(&self.dur_us.to_string());
        span_fields_json(&self.fields, out);
        out.push('}');
    }
}

/// One completed trace: the root span plus every child recorded on the
/// rooting thread, in completion order.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Root span name, e.g. `http::/quantile`.
    pub root: &'static str,
    /// Wall-clock start (milliseconds since the Unix epoch).
    pub started_unix_ms: u64,
    /// Total root duration in microseconds.
    pub total_us: u64,
    /// Whether the trace exceeded the sink's slow threshold.
    pub slow: bool,
    /// Spans in completion order; the root (id 1) is last.
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// Encode as a single JSON object (one line, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + 96 * self.spans.len());
        out.push_str("{\"trace\":\"");
        json_escape(self.root, &mut out);
        out.push_str("\",\"started_unix_ms\":");
        out.push_str(&self.started_unix_ms.to_string());
        out.push_str(",\"total_us\":");
        out.push_str(&self.total_us.to_string());
        out.push_str(",\"slow\":");
        out.push_str(if self.slow { "true" } else { "false" });
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.to_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

/// One structured event (outside any trace).
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Wall-clock timestamp (milliseconds since the Unix epoch).
    pub unix_ms: u64,
    /// Severity.
    pub level: Level,
    /// Event name, e.g. `engine::worker_restart`.
    pub name: &'static str,
    /// Key=value payload.
    pub fields: Vec<(&'static str, String)>,
}

impl EventRecord {
    /// Encode as a single JSON object (one line, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"event\":\"");
        json_escape(self.name, &mut out);
        out.push_str("\",\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"unix_ms\":");
        out.push_str(&self.unix_ms.to_string());
        fields_json(&self.fields, &mut out);
        out.push('}');
        out
    }
}

fn fields_json(fields: &[(&'static str, String)], out: &mut String) {
    if fields.is_empty() {
        return;
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape(k, out);
        out.push_str("\":\"");
        json_escape(v, out);
        out.push('"');
    }
    out.push('}');
}

fn span_fields_json(fields: &[(&'static str, FieldValue)], out: &mut String) {
    if fields.is_empty() {
        return;
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape(k, out);
        out.push_str("\":");
        v.to_json(out);
    }
    out.push('}');
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The per-thread trace under construction.
struct ActiveTrace {
    sink: Arc<SinkShared>,
    root: &'static str,
    epoch: Instant,
    started_unix_ms: u64,
    next_id: u64,
    /// Open span ids, root first — `last()` is the current parent.
    stack: Vec<u64>,
    spans: Vec<SpanRecord>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
    /// Recycled span stack: unlike `spans` (which is moved into the
    /// completed record), the stack never leaves the thread, so each
    /// request after the first opens its root without allocating it.
    static STACK_POOL: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

struct SinkShared {
    slow_us: AtomicU64,
    traces: Mutex<VecDeque<TraceRecord>>,
    events: Mutex<VecDeque<EventRecord>>,
    trace_cap: usize,
    event_cap: usize,
}

/// Default ring capacity for completed traces.
pub const DEFAULT_TRACE_CAP: usize = 256;
/// Default ring capacity for events.
pub const DEFAULT_EVENT_CAP: usize = 512;

/// Bounded ring of completed traces and events, plus the slow-trace
/// stderr policy. Cloneable handle; all clones share state.
#[derive(Clone)]
pub struct TraceSink {
    shared: Arc<SinkShared>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new(DEFAULT_TRACE_CAP)
    }
}

impl TraceSink {
    /// A sink retaining up to `trace_cap` traces (and a proportional
    /// number of events), with the slow-trace log disabled.
    pub fn new(trace_cap: usize) -> TraceSink {
        TraceSink {
            shared: Arc::new(SinkShared {
                slow_us: AtomicU64::new(0),
                traces: Mutex::new(VecDeque::new()),
                events: Mutex::new(VecDeque::new()),
                trace_cap: trace_cap.max(1),
                event_cap: DEFAULT_EVENT_CAP.max(2 * trace_cap),
            }),
        }
    }

    /// Traces at least this slow are written to stderr as JSON lines
    /// (and marked `"slow":true` in the ring). Zero disables.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        self.shared
            .slow_us
            .store(threshold.as_micros() as u64, Ordering::Relaxed);
    }

    /// Current slow threshold; zero means disabled.
    pub fn slow_threshold(&self) -> Duration {
        Duration::from_micros(self.shared.slow_us.load(Ordering::Relaxed))
    }

    /// Open a root span on the calling thread. Child spans opened on
    /// this thread (via [`span`]) nest under it until the guard drops,
    /// at which point the assembled [`TraceRecord`] lands in the ring.
    ///
    /// If a trace is already open on this thread (e.g. a refresh forced
    /// inline by a handler that is itself traced), the "root" degrades
    /// to an ordinary child span of the existing trace.
    pub fn root_span(&self, name: &'static str) -> RootSpan {
        let nested = ACTIVE.with(|a| a.borrow().is_some());
        if nested {
            return RootSpan {
                inner: RootInner::Nested(span(name)),
            };
        }
        let mut stack = STACK_POOL.with(|p| std::mem::take(&mut *p.borrow_mut()));
        stack.clear();
        stack.push(1);
        ACTIVE.with(|a| {
            *a.borrow_mut() = Some(ActiveTrace {
                sink: Arc::clone(&self.shared),
                root: name,
                epoch: Instant::now(),
                started_unix_ms: unix_ms(),
                next_id: 2,
                stack,
                spans: Vec::new(),
            });
        });
        RootSpan {
            inner: RootInner::Root { fields: Vec::new() },
        }
    }

    /// Record a structured event. Warn-level events are also written to
    /// stderr immediately as JSON lines — the "when, not just how many"
    /// half of counters like `wal_append_errors`.
    pub fn event(&self, level: Level, name: &'static str, fields: &[(&'static str, String)]) {
        let rec = EventRecord {
            unix_ms: unix_ms(),
            level,
            name,
            fields: fields.to_vec(),
        };
        if level == Level::Warn {
            eprintln!("{}", rec.to_json());
        }
        let mut events = lock(&self.shared.events);
        if events.len() >= self.shared.event_cap {
            events.pop_front();
        }
        events.push_back(rec);
    }

    /// The most recent `n` completed traces, oldest first.
    pub fn recent_traces(&self, n: usize) -> Vec<TraceRecord> {
        let traces = lock(&self.shared.traces);
        traces
            .iter()
            .skip(traces.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// The most recent `n` events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<EventRecord> {
        let events = lock(&self.shared.events);
        events
            .iter()
            .skip(events.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Completed-trace count currently retained.
    pub fn trace_count(&self) -> usize {
        lock(&self.shared.traces).len()
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("traces", &self.trace_count())
            .finish_non_exhaustive()
    }
}

enum RootInner {
    Root {
        fields: Vec<(&'static str, FieldValue)>,
    },
    Nested(SpanGuard),
}

/// Guard for a root span; finalizes the trace on drop.
pub struct RootSpan {
    inner: RootInner,
}

impl RootSpan {
    /// Attach a key=value field to the root span.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        match &mut self.inner {
            RootInner::Root { fields } => fields.push((key, value.into())),
            RootInner::Nested(g) => g.field(key, value),
        }
    }
}

impl Drop for RootSpan {
    fn drop(&mut self) {
        let RootInner::Root { fields } = &mut self.inner else {
            return; // nested child: SpanGuard's own drop records it
        };
        let fields = std::mem::take(fields);
        let Some(mut active) = ACTIVE.with(|a| a.borrow_mut().take()) else {
            return;
        };
        STACK_POOL.with(|p| *p.borrow_mut() = std::mem::take(&mut active.stack));
        let total_us = active.epoch.elapsed().as_micros() as u64;
        let slow_us = active.sink.slow_us.load(Ordering::Relaxed);
        let slow = slow_us > 0 && total_us >= slow_us;
        active.spans.push(SpanRecord {
            id: 1,
            parent: 0,
            name: active.root,
            start_us: 0,
            dur_us: total_us,
            fields,
        });
        let rec = TraceRecord {
            root: active.root,
            started_unix_ms: active.started_unix_ms,
            total_us,
            slow,
            spans: active.spans,
        };
        if slow {
            eprintln!("{}", rec.to_json());
        }
        let mut traces = lock(&active.sink.traces);
        if traces.len() >= active.sink.trace_cap {
            traces.pop_front();
        }
        traces.push_back(rec);
    }
}

/// Open a child span of the thread's active trace, if any. When no
/// trace is open this is a no-op guard — one thread-local probe — so
/// library layers (engine, WAL, cube, timeline) instrument
/// unconditionally without threading any handle.
pub fn span(name: &'static str) -> SpanGuard {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let Some(active) = slot.as_mut() else {
            return SpanGuard {
                armed: false,
                id: 0,
                parent: 0,
                name,
                start_us: 0,
                fields: Vec::new(),
            };
        };
        let id = active.next_id;
        active.next_id += 1;
        let parent = active.stack.last().copied().unwrap_or(1);
        active.stack.push(id);
        SpanGuard {
            armed: true,
            id,
            parent,
            name,
            start_us: active.epoch.elapsed().as_micros() as u64,
            fields: Vec::new(),
        }
    })
}

/// Guard for a child span; records it into the active trace on drop.
pub struct SpanGuard {
    armed: bool,
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// Attach a key=value field (no-op when the guard is unarmed).
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.armed {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let Some(active) = slot.as_mut() else {
                return; // root already closed (guard escaped its trace)
            };
            let end_us = active.epoch.elapsed().as_micros() as u64;
            if active.stack.last() == Some(&self.id) {
                active.stack.pop();
            } else {
                active.stack.retain(|&i| i != self.id);
            }
            active.spans.push(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: self.name,
                start_us: self.start_us,
                dur_us: end_us.saturating_sub(self.start_us),
                fields: std::mem::take(&mut self.fields),
            });
        });
    }
}
