//! Metrics registry: counters, gauges, and moment-sketch latency
//! recorders, rendered in Prometheus text exposition format.
//!
//! The registry follows the same discipline as
//! `crates/compat/failpoint`: hot paths touch only relaxed atomics (or,
//! for recorders, one striped mutex), and the global arming gate is a
//! single relaxed load so unarmed instrumentation costs ~1 ns.
//!
//! Latency recorders are the self-hosting part: each (metric,
//! label-set) owns a small pool of [`MomentsSketch`] stripes (one per
//! recording thread, assigned round-robin), merged in stripe order at
//! scrape time exactly as shard panes are merged in shard order — so
//! concurrent recording is bit-identical to sequential recording of the
//! same per-stripe sequences, and `/metrics` serves p50/p95/p99 through
//! the repo's own max-entropy solver.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use moments_sketch::{bounds, MomentsSketch, SolverConfig};
use msketch_sketches::traits::Sketch as _;
use msketch_sketches::MSketchSummary;

/// Sketch order for latency recorders — the paper's default (184 bytes).
const RECORDER_K: usize = 10;

/// Stripes per recorder. Threads are assigned stripes round-robin, so
/// up to this many threads record without contending on one mutex.
pub const RECORDER_STRIPES: usize = 8;

/// Bisection iterations for the certified-bounds fallback when the
/// max-entropy solve fails (same budget as the server's degraded path).
const BOUND_ITERS: usize = 60;

/// Quantiles exposed per summary series.
pub const EXPOSED_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonically increasing counter (relaxed atomics).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value. Only for mirroring a total accumulated
    /// elsewhere (e.g. engine `SharedStats` scraped into the registry);
    /// regular call sites should use [`Counter::inc`]/[`Counter::add`].
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A settable gauge (relaxed atomics, unsigned).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Round-robin stripe assignment: each thread gets a stable stripe
/// index the first time it records, so a given thread's observations
/// always land in the same sketch (deterministic merge inputs).
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_STRIPE: usize =
        NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % RECORDER_STRIPES;
}

struct RecorderShared {
    stripes: [Mutex<MomentsSketch>; RECORDER_STRIPES],
    enabled: Arc<AtomicBool>,
}

/// A latency recorder backed by striped [`MomentsSketch`]es.
///
/// `observe` values are in **seconds** (Prometheus base-unit
/// convention). The merged sketch is queried at scrape time via the
/// max-entropy solver, falling back to certified-bound midpoints on
/// solver failure — the same degradation ladder as `/quantile`.
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<RecorderShared>,
}

impl Recorder {
    fn new(enabled: Arc<AtomicBool>) -> Recorder {
        Recorder {
            shared: Arc::new(RecorderShared {
                stripes: std::array::from_fn(|_| Mutex::new(MomentsSketch::new(RECORDER_K))),
                enabled,
            }),
        }
    }

    /// Record one observation (seconds) into the calling thread's stripe.
    pub fn observe(&self, secs: f64) {
        let stripe = THREAD_STRIPE.with(|s| *s);
        self.observe_striped(stripe, secs);
    }

    /// Record into an explicit stripe. Tests use this to prove the
    /// concurrent-merge path bit-identical to sequential recording.
    pub fn observe_striped(&self, stripe: usize, secs: f64) {
        lock(&self.shared.stripes[stripe % RECORDER_STRIPES]).accumulate(secs);
    }

    /// Start a timer that records its elapsed time on [`Timer::stop`] or
    /// drop. When the registry is disarmed this is a single relaxed
    /// load and the timer is a no-op.
    pub fn start(&self) -> Timer {
        if self.shared.enabled.load(Ordering::Relaxed) {
            Timer {
                recorder: Some(self.clone()),
                started: Instant::now(),
            }
        } else {
            Timer {
                recorder: None,
                started: Instant::now(),
            }
        }
    }

    /// Merge all stripes in stripe order into one sketch.
    ///
    /// Stripe order is fixed, so the result is bit-identical no matter
    /// how recording threads interleaved (float addition per stripe is
    /// sequenced by the stripe mutex; cross-stripe addition is sequenced
    /// here) — the pane-merge discipline from the engine.
    pub fn merged(&self) -> MomentsSketch {
        let mut out = MomentsSketch::new(RECORDER_K);
        for stripe in &self.shared.stripes {
            out.merge(&lock(stripe));
        }
        out
    }

    /// Total observations across stripes.
    pub fn count(&self) -> u64 {
        self.shared
            .stripes
            .iter()
            .map(|s| lock(s).count() as u64)
            .sum()
    }

    /// Estimate quantiles of the merged sketch: one max-entropy solve
    /// amortized over all `phis`, with certified-bound midpoints for any
    /// quantile the solver cannot produce. Empty recorders yield NaNs.
    pub fn quantiles(&self, phis: &[f64]) -> Vec<f64> {
        let merged = self.merged();
        if merged.count() == 0.0 {
            return vec![f64::NAN; phis.len()];
        }
        let summary = MSketchSummary::from_sketch(merged.clone(), SolverConfig::default());
        let mut qs = summary.quantiles(phis);
        for (q, &phi) in qs.iter_mut().zip(phis) {
            if q.is_nan() {
                let iv = bounds::quantile_interval(&merged, phi, BOUND_ITERS);
                *q = 0.5 * (iv.lo + iv.hi);
            }
        }
        qs
    }
}

/// Guard returned by [`Recorder::start`]; records elapsed seconds on
/// drop (or explicitly via [`Timer::stop`]).
pub struct Timer {
    recorder: Option<Recorder>,
    started: Instant,
}

impl Timer {
    /// Stop now and record; consumes the timer.
    pub fn stop(self) {}

    /// Elapsed seconds so far (whether or not the timer is armed).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Discard without recording (e.g. on error paths that should not
    /// pollute the latency distribution).
    pub fn cancel(mut self) {
        self.recorder = None;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(rec) = self.recorder.take() {
            rec.observe(self.started.elapsed().as_secs_f64());
        }
    }
}

/// Sorted label pairs — the series key within a metric family.
type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut ls: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    ls.sort();
    ls
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<(String, LabelSet), Counter>,
    gauges: BTreeMap<(String, LabelSet), Gauge>,
    recorders: BTreeMap<(String, LabelSet), Recorder>,
}

/// A metrics registry: named counter/gauge/summary families, each
/// family a set of label-distinguished series.
///
/// Handles returned by [`Registry::counter`] etc. are cached per
/// (name, label-set) and cheap to clone; hot paths fetch them once at
/// startup and never touch the registry map again. Metric names used
/// with literal names are pinned append-only in `lint/metrics.golden`
/// (lint rule `metrics`), like wire tags and failpoints.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    inner: Mutex<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, armed registry.
    pub fn new() -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// The process-global registry, for binaries that do not thread an
    /// explicit [`crate::Obs`] handle. The server builds its own
    /// per-instance registry so tests stay isolated.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Arm or disarm timers ([`Recorder::start`]). Counters and gauges
    /// are so cheap they are unconditional; this gate exists for the
    /// armed-vs-unarmed overhead bench and for `--no-obs` style opt-out.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether timers are armed.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Get or register the counter series `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        lock(&self.inner)
            .counters
            .entry((name.to_string(), label_set(labels)))
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Get or register the gauge series `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        lock(&self.inner)
            .gauges
            .entry((name.to_string(), label_set(labels)))
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Get or register the latency-recorder (summary) series
    /// `name{labels}`.
    pub fn recorder(&self, name: &str, labels: &[(&str, &str)]) -> Recorder {
        lock(&self.inner)
            .recorders
            .entry((name.to_string(), label_set(labels)))
            .or_insert_with(|| Recorder::new(Arc::clone(&self.enabled)))
            .clone()
    }

    /// All registered series names (sorted, deduplicated) — the lint
    /// `metrics` rule's runtime counterpart, used by tests.
    pub fn names(&self) -> Vec<String> {
        let inner = lock(&self.inner);
        let mut names: Vec<String> = inner
            .counters
            .keys()
            .chain(inner.gauges.keys())
            .chain(inner.recorders.keys())
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Render every registered series in Prometheus text exposition
    /// format (version 0.0.4): `# TYPE` per family, then one line per
    /// series, summaries as `quantile=` series plus `_sum`/`_count`.
    ///
    /// Output is deterministically ordered (BTreeMap iteration), so
    /// scrapes are diffable.
    pub fn render(&self) -> String {
        // Snapshot handles under the lock, estimate quantiles outside it
        // (the max-entropy solve is the expensive part of a scrape).
        let (counters, gauges, recorders) = {
            let inner = lock(&self.inner);
            (
                inner
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
                inner
                    .gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
                inner
                    .recorders
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_type.as_deref() != Some(name) {
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
                last_type = Some(name.to_string());
            }
        };
        for ((name, labels), c) in &counters {
            type_line(&mut out, name, "counter");
            series_line(&mut out, name, labels, &[], &c.get().to_string());
        }
        for ((name, labels), g) in &gauges {
            type_line(&mut out, name, "gauge");
            series_line(&mut out, name, labels, &[], &g.get().to_string());
        }
        for ((name, labels), r) in &recorders {
            type_line(&mut out, name, "summary");
            let merged = r.merged();
            let qs = r.quantiles(&EXPOSED_QUANTILES);
            for (phi, q) in EXPOSED_QUANTILES.iter().zip(&qs) {
                series_line(
                    &mut out,
                    name,
                    labels,
                    &[("quantile", &format_phi(*phi))],
                    &format_value(*q),
                );
            }
            // The moments sketch carries sum and count natively:
            // power_sums[1] = Σx, power_sums[0] = n.
            let sum = if merged.count() == 0.0 {
                0.0
            } else {
                merged.power_sums()[1]
            };
            let mut sum_name = name.clone();
            sum_name.push_str("_sum");
            series_line(&mut out, &sum_name, labels, &[], &format_value(sum));
            let mut count_name = name.clone();
            count_name.push_str("_count");
            series_line(
                &mut out,
                &count_name,
                labels,
                &[],
                &(merged.count() as u64).to_string(),
            );
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

/// `0.5` / `0.95` / `0.99` — trimmed, no trailing zeros (label text).
fn format_phi(phi: f64) -> String {
    let mut s = format!("{phi}");
    if !s.contains('.') {
        s.push_str(".0");
    }
    s
}

/// A sample value: Rust's shortest-round-trip float formatting, which
/// the Prometheus text format accepts (including `NaN`).
fn format_value(v: f64) -> String {
    format!("{v}")
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn series_line(
    out: &mut String,
    name: &str,
    labels: &LabelSet,
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        let pairs = labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied());
        for (k, v) in pairs {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}
