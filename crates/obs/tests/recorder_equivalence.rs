//! Property suite for the latency recorder's merge discipline: a
//! recorder fed from N concurrent threads (each thread owning one
//! stripe, as in production) must report power sums and quantiles
//! **bit-identical** to a single-threaded recorder fed the same samples
//! in the same per-stripe order.
//!
//! This is the pane discipline from the engine applied to the
//! observability layer: float addition is not associative, so
//! equivalence holds because (a) each stripe's additions are sequenced
//! by its mutex in arrival order, and (b) stripes merge in fixed index
//! order — thread interleaving never changes any addition order.

use msketch_obs::registry::RECORDER_STRIPES;
use msketch_obs::Registry;
use proptest::prelude::*;
use std::sync::Arc;

/// Everything `/metrics` derives from a recorder, bit-exactly
/// comparable: raw moment state and the solver's quantile estimates.
fn fingerprint(rec: &msketch_obs::Recorder) -> (Vec<u64>, Vec<u64>, u64, u64, Vec<u64>) {
    let merged = rec.merged();
    let qs = rec.quantiles(&[0.5, 0.95, 0.99]);
    (
        merged.power_sums().iter().map(|v| v.to_bits()).collect(),
        merged.log_sums().iter().map(|v| v.to_bits()).collect(),
        merged.min().to_bits(),
        merged.max().to_bits(),
        qs.iter().map(|v| v.to_bits()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concurrent striped recording is bit-identical to sequential.
    #[test]
    fn concurrent_merge_matches_sequential(
        samples in prop::collection::vec(
            (0usize..RECORDER_STRIPES, 1e-7f64..10.0),
            1..400,
        ),
    ) {
        // Sequential reference: one thread, samples in arrival order.
        let reg = Registry::new();
        let sequential = reg.recorder("obs_test_latency_seconds", &[]);
        for (stripe, v) in &samples {
            sequential.observe_striped(*stripe, *v);
        }

        // Concurrent: one thread per stripe, each feeding its own
        // subsequence (per-stripe order preserved, cross-stripe
        // interleaving left to the scheduler).
        let concurrent = Arc::new(reg.recorder("obs_test_latency_concurrent_seconds", &[]));
        let mut per_stripe: Vec<Vec<f64>> = vec![Vec::new(); RECORDER_STRIPES];
        for (stripe, v) in &samples {
            per_stripe[*stripe].push(*v);
        }
        let handles: Vec<_> = per_stripe
            .into_iter()
            .enumerate()
            .map(|(stripe, vs)| {
                let rec = Arc::clone(&concurrent);
                std::thread::spawn(move || {
                    for v in vs {
                        rec.observe_striped(stripe, v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread panicked");
        }

        prop_assert_eq!(fingerprint(&sequential), fingerprint(&concurrent));
        prop_assert_eq!(sequential.count(), samples.len() as u64);
    }
}
