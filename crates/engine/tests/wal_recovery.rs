//! Adversarial WAL-reader suite: the recovery invariant is that for
//! *any* byte-level damage — truncation at every offset, a bit flip at
//! every offset, random multi-byte corruption — `Wal::open` never
//! panics, recovers exactly the longest valid segment prefix, and
//! types what stopped the replay.
//!
//! The exhaustive sweeps are plain loops (every offset of a real
//! multi-segment log is only a few thousand cases); the property tests
//! layer randomized corruption patterns on top.

use msketch_cube::DynCube;
use msketch_engine::{Wal, WalConfig};
use msketch_sketches::SketchSpec;
use proptest::prelude::*;

/// A small pane with both cells populated.
fn pane(rows: std::ops::Range<u64>) -> DynCube {
    let mut cube = DynCube::from_spec(SketchSpec::moments(8), &["region"]);
    for i in rows {
        cube.insert(&[["eu", "us"][(i % 2) as usize]], i as f64)
            .unwrap();
    }
    cube
}

/// Build a 3-segment log and return its bytes plus the clean prefix
/// table: `(end_offset, segments, rows)` for every frame boundary,
/// including the empty prefix.
fn build_log() -> (Vec<u8>, Vec<(u64, u64, u64)>) {
    let dir = std::env::temp_dir().join(format!(
        "msketch-walprop-build-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut wal, _, _) = Wal::open(&dir, WalConfig::default()).unwrap();
    let mut boundaries = vec![(0, 0, 0)];
    let mut rows_total = 0;
    for (epoch, range) in [(1, 0..13), (2, 13..40), (3, 40..71)] {
        rows_total += range.end - range.start;
        wal.append(epoch, &pane(range).to_bytes()).unwrap();
        boundaries.push((wal.bytes_appended(), epoch, rows_total));
    }
    let bytes = std::fs::read(wal.path()).unwrap();
    assert_eq!(bytes.len() as u64, wal.bytes_appended());
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    (bytes, boundaries)
}

/// Write `log` into a scratch dir and open it, returning what recovery
/// saw: `(segments, rows, valid_bytes, torn_tail)`.
fn recover(log: &[u8]) -> (u64, u64, u64, bool) {
    let dir = std::env::temp_dir().join(format!(
        "msketch-walprop-open-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(Wal::LOG_FILE), log).unwrap();
    let (wal, base, report) = Wal::open(&dir, WalConfig::default()).unwrap();
    // Open repairs the file in place: what's left on disk is exactly
    // the valid prefix.
    let repaired = std::fs::metadata(wal.path()).unwrap().len();
    assert_eq!(repaired, report.valid_bytes);
    assert_eq!(
        base.as_ref().map_or(0, |cube| cube.row_count()),
        report.rows_recovered
    );
    let out = (
        report.segments_replayed as u64,
        report.rows_recovered,
        report.valid_bytes,
        report.tail.is_some(),
    );
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[test]
fn truncation_at_every_offset_recovers_the_longest_valid_prefix() {
    let (log, boundaries) = build_log();
    for cut in 0..=log.len() {
        let (segments, rows, valid_bytes, torn) = recover(&log[..cut]);
        let (expect_bytes, expect_epoch, expect_rows) = *boundaries
            .iter()
            .rev()
            .find(|(end, _, _)| *end <= cut as u64)
            .unwrap();
        assert_eq!(segments, expect_epoch, "cut at {cut}");
        assert_eq!(rows, expect_rows, "cut at {cut}");
        assert_eq!(valid_bytes, expect_bytes, "cut at {cut}");
        // A cut exactly on a frame boundary is a clean log, anything
        // else leaves a typed torn tail.
        assert_eq!(torn, expect_bytes != cut as u64, "cut at {cut}");
    }
}

#[test]
fn a_bit_flip_at_every_offset_stops_replay_at_the_damaged_segment() {
    let (log, boundaries) = build_log();
    for offset in 0..log.len() {
        let mut damaged = log.clone();
        damaged[offset] ^= 0x40;
        let (segments, rows, valid_bytes, torn) = recover(&damaged);
        // Every byte of a frame — magic, epoch, length, CRC, payload —
        // is integrity-checked, so the flipped segment and everything
        // after it must be rejected, and everything before it kept.
        let (expect_bytes, expect_epoch, expect_rows) = *boundaries
            .iter()
            .rev()
            .find(|(end, _, _)| *end <= offset as u64)
            .unwrap();
        assert_eq!(segments, expect_epoch, "flip at {offset}");
        assert_eq!(rows, expect_rows, "flip at {offset}");
        assert_eq!(valid_bytes, expect_bytes, "flip at {offset}");
        assert!(torn, "flip at {offset} must leave a typed tail");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random multi-byte corruption: recovery never panics, never
    /// reports more than it could have seen, and always lands on a
    /// frame boundary.
    #[test]
    fn random_corruption_never_panics_and_keeps_a_valid_prefix(
        positions in prop::collection::vec(0.0f64..1.0, 1..8),
        flip in 1u8..=255,
        cut in 0.0f64..1.0,
    ) {
        let (log, boundaries) = build_log();
        let mut damaged = log.clone();
        for p in &positions {
            let offset = ((p * damaged.len() as f64) as usize).min(damaged.len() - 1);
            damaged[offset] ^= flip;
        }
        let keep = ((cut * (damaged.len() + 1) as f64) as usize).min(damaged.len());
        let (segments, rows, valid_bytes, _) = recover(&damaged[..keep]);
        prop_assert!(segments <= 3);
        // Whatever survives is a clean prefix from the boundary table:
        // never a partial segment, never rows from a damaged one.
        prop_assert!(
            boundaries.contains(&(valid_bytes, segments, rows)),
            "({valid_bytes}, {segments}, {rows}) is not a clean prefix"
        );
    }

    /// Appending garbage after a valid log: replay keeps every real
    /// segment and types the garbage as the tail.
    #[test]
    fn garbage_tails_never_cost_valid_segments(
        tail in prop::collection::vec(0u8..=255, 1..64),
    ) {
        let (log, boundaries) = build_log();
        let mut damaged = log.clone();
        damaged.extend_from_slice(&tail);
        let (segments, rows, valid_bytes, torn) = recover(&damaged);
        let &(expect_bytes, expect_epoch, expect_rows) = boundaries.last().unwrap();
        prop_assert_eq!(segments, expect_epoch);
        prop_assert_eq!(rows, expect_rows);
        prop_assert_eq!(valid_bytes, expect_bytes);
        prop_assert!(torn);
    }
}
