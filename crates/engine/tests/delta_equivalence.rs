//! Property suite for the incremental delta-snapshot path: for any
//! random stream of multi-writer ingest, epoch refreshes, and pane
//! rotations — including worker restarts and WAL crash recovery — the
//! delta-maintained double buffer must be *bit-identical* to a full
//! refold of the same shard state, and (for order-preserving
//! single-writer streams) to plain sequential ingest into one cube.
//!
//! "Bit-identical" is checked cell by cell: snapshots are flattened to
//! `decoded name tuple -> serialized summary bytes` maps, so two cubes
//! compare equal exactly when every cell's power sums (and min/max)
//! match to the last bit — dictionaries are allowed to assign ids in
//! different orders.
//!
//! Failpoints are process-global, so the tests that arm one hold
//! [`FAILPOINT_LOCK`] for their whole body.

use msketch_cube::DynCube;
use msketch_engine::{DynShardedCube, EngineConfig, WalConfig};
use msketch_sketches::{Sketch, SketchSpec};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;

static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

const REGIONS: [&str; 5] = ["eu", "us", "ap", "sa", "af"];
const APPS: [&str; 4] = ["web", "api", "batch", "cron"];

fn engine(shards: usize, batch_rows: usize) -> DynShardedCube {
    DynShardedCube::new(
        SketchSpec::moments(8),
        &["region", "app"],
        EngineConfig::with_shards(shards).batch_rows(batch_rows),
    )
}

/// One deterministic row from a seed: which cell it lands in and the
/// metric it carries are both functions of `seed`, so any two engines
/// fed the same seeds see byte-identical inputs.
fn row(seed: u64) -> ([&'static str; 2], f64) {
    let region = REGIONS[(seed % 5) as usize];
    let app = APPS[((seed / 5) % 4) as usize];
    let metric = (seed % 997) as f64 - 331.5;
    ([region, app], metric)
}

/// Flatten a cube to `decoded names -> summary bytes`. Ids may differ
/// between two cubes (their dictionaries interned values in different
/// orders), so cells are keyed by decoded value tuple.
fn fingerprint(cube: &DynCube) -> HashMap<Vec<String>, Vec<u8>> {
    cube.cells()
        .map(|(key, summary)| {
            let names: Vec<String> = key
                .iter()
                .enumerate()
                .map(|(d, &id)| {
                    cube.dictionary(d)
                        .ok()
                        .and_then(|dict| dict.decode(id))
                        .unwrap_or("")
                        .to_string()
                })
                .collect();
            (names, summary.to_bytes())
        })
        .collect()
}

/// Refresh both ways at the same barrier and demand identity. Returns
/// the delta-path row count so callers can assert on coverage.
fn assert_delta_matches_refold(engine: &mut DynShardedCube, context: &str) -> u64 {
    let delta_snap = engine.snapshot().unwrap();
    let refold_snap = engine.snapshot_refold().unwrap();
    assert_eq!(
        delta_snap.row_count(),
        refold_snap.row_count(),
        "row counts diverged: {context}"
    );
    assert_eq!(
        delta_snap.cell_count(),
        refold_snap.cell_count(),
        "cell counts diverged: {context}"
    );
    assert_eq!(
        fingerprint(delta_snap.cube()),
        fingerprint(refold_snap.cube()),
        "cells diverged: {context}"
    );
    delta_snap.row_count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random multi-writer streams with refreshes and rotations mixed
    /// in: after every refresh, the incrementally-maintained snapshot
    /// equals a full refold of the same shard state, bit for bit.
    #[test]
    fn delta_snapshots_match_full_refold_on_random_streams(
        ops in prop::collection::vec((0u8..8, any::<u64>(), 1usize..60), 2..14),
        shards in 1usize..4,
        batch_pick in 0usize..3,
    ) {
        let batch_rows = [1, 7, 64][batch_pick];
        let mut engine = engine(shards, batch_rows);
        // Two extra ingest handles alongside the engine's embedded
        // writer: three interleaved producers per stream.
        let mut writers = [engine.writer(), engine.writer()];
        for (tag, op_seed, count) in ops {
            match tag {
                // Ingest `count` rows through one of the three lanes.
                0..=4 => {
                    let lane = usize::from(tag) % 3;
                    for i in 0..count {
                        let (dims, metric) = row(op_seed.wrapping_add(i as u64));
                        if lane == 0 {
                            engine.insert(&dims, metric).unwrap();
                        } else {
                            writers[lane - 1].insert(&dims, metric).unwrap();
                        }
                    }
                }
                // Refresh and compare both snapshot paths.
                5 | 6 => {
                    for writer in writers.iter_mut() {
                        writer.flush().unwrap();
                    }
                    assert_delta_matches_refold(&mut engine, "mid-stream refresh");
                }
                // Retire the pane: the delta state must rebase cleanly.
                _ => {
                    for writer in writers.iter_mut() {
                        writer.flush().unwrap();
                    }
                    engine.rotate_pane().unwrap();
                }
            }
        }
        for writer in writers.iter_mut() {
            writer.flush().unwrap();
        }
        assert_delta_matches_refold(&mut engine, "final refresh");
        engine.shutdown().unwrap();
    }

    /// A single writer preserves per-cell arrival order end to end, so
    /// the delta snapshot must also equal plain sequential ingest into
    /// one unsharded cube — no refold reference involved.
    #[test]
    fn single_writer_delta_snapshots_match_sequential_ingest(
        segments in prop::collection::vec(1usize..80, 1..6),
        stream_seed in any::<u64>(),
    ) {
        let mut engine = engine(2, 5);
        let mut reference = DynCube::from_spec(SketchSpec::moments(8), &["region", "app"]);
        let mut next = stream_seed;
        for (round, count) in segments.into_iter().enumerate() {
            for _ in 0..count {
                let (dims, metric) = row(next);
                next = next.wrapping_add(1);
                engine.insert(&dims, metric).unwrap();
                reference.insert(&dims, metric).unwrap();
            }
            let snap = engine.snapshot().unwrap();
            prop_assert_eq!(snap.row_count(), reference.row_count(), "round {}", round);
            prop_assert_eq!(
                fingerprint(snap.cube()),
                fingerprint(&reference),
                "round {}",
                round
            );
        }
        engine.shutdown().unwrap();
    }
}

/// A worker panic rolls its shard back to the last checkpoint and
/// discards the poisoned batch; the delta bookkeeping (touched cells,
/// writer tables) must survive the restart so later refreshes remain
/// bit-exact against both the refold path and a clean engine fed the
/// surviving history.
#[test]
fn delta_snapshots_stay_exact_across_worker_restarts() {
    let _guard = FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut engine = engine(1, 1024);
    for seed in 0..200 {
        let (dims, metric) = row(seed);
        engine.insert(&dims, metric).unwrap();
    }
    assert_eq!(assert_delta_matches_refold(&mut engine, "pre-panic"), 200);

    // The next batch dies mid-apply; supervision rolls back to the
    // refreshed checkpoint above.
    failpoint::cfg("engine::worker_panic", "1*panic").unwrap();
    for seed in 200..260 {
        let (dims, metric) = row(seed);
        engine.insert(&dims, metric).unwrap();
    }
    engine.flush().unwrap();
    let rows = assert_delta_matches_refold(&mut engine, "post-panic");
    failpoint::remove("engine::worker_panic");
    assert_eq!(rows, 200, "poisoned batch must be discarded whole");
    assert_eq!(engine.stats().worker_restarts, 1);

    // Later rows land normally and the restarted worker's deltas still
    // reproduce a clean engine fed the same surviving history.
    for seed in 260..300 {
        let (dims, metric) = row(seed);
        engine.insert(&dims, metric).unwrap();
    }
    assert_eq!(
        assert_delta_matches_refold(&mut engine, "post-restart"),
        240
    );
    let snap = engine.snapshot().unwrap();
    let mut clean = DynShardedCube::new(
        SketchSpec::moments(8),
        &["region", "app"],
        EngineConfig::with_shards(1).batch_rows(1024),
    );
    for seed in (0..200).chain(260..300) {
        let (dims, metric) = row(seed);
        clean.insert(&dims, metric).unwrap();
    }
    let clean_snap = clean.snapshot().unwrap();
    assert_eq!(fingerprint(snap.cube()), fingerprint(clean_snap.cube()));
    engine.shutdown().unwrap();
    clean.shutdown().unwrap();
}

/// Crash-stop between checkpoints: replaying the WAL must restore the
/// merged base so that delta refreshes over it keep matching the
/// refold path, and the recovered state must equal the last durable
/// snapshot bit for bit.
#[test]
fn delta_snapshots_stay_exact_across_wal_crash_recovery() {
    let dir = std::env::temp_dir().join("msketch-delta-equiv-walcrash");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SketchSpec::moments(8);
    let config = || EngineConfig::with_shards(2).batch_rows(32);

    // First life: two durable checkpoints fed by two writers, then
    // uncheckpointed rows, then a crash (drop without checkpoint).
    let durable;
    {
        let (mut engine, _) = DynShardedCube::recover(
            spec.clone(),
            &["region", "app"],
            config(),
            &dir,
            WalConfig::default(),
        )
        .unwrap();
        let mut side = engine.writer();
        for seed in 0..400 {
            let (dims, metric) = row(seed);
            if seed % 3 == 0 {
                side.insert(&dims, metric).unwrap();
            } else {
                engine.insert(&dims, metric).unwrap();
            }
        }
        side.flush().unwrap();
        engine.checkpoint().unwrap();
        for seed in 400..700 {
            let (dims, metric) = row(seed);
            if seed % 3 == 0 {
                side.insert(&dims, metric).unwrap();
            } else {
                engine.insert(&dims, metric).unwrap();
            }
        }
        side.flush().unwrap();
        let snap = engine.checkpoint().unwrap();
        assert_eq!(snap.row_count(), 700);
        durable = fingerprint(snap.cube());
        // These rows never reach a checkpoint: the crash loses exactly
        // them and nothing else.
        for seed in 700..750 {
            let (dims, metric) = row(seed);
            engine.insert(&dims, metric).unwrap();
        }
        engine.flush().unwrap();
    }

    // Second life: the replayed base seeds the delta state.
    let (mut engine, report) = DynShardedCube::recover(
        spec,
        &["region", "app"],
        config(),
        &dir,
        WalConfig::default(),
    )
    .unwrap();
    assert_eq!(report.rows_recovered, 700);
    let snap = engine.snapshot().unwrap();
    assert_eq!(fingerprint(snap.cube()), durable);
    assert_eq!(
        assert_delta_matches_refold(&mut engine, "post-recovery"),
        700
    );

    // And the recovered base keeps absorbing new panes correctly:
    // ingest, refresh, checkpoint, refresh — all still bit-exact.
    for seed in 750..900 {
        let (dims, metric) = row(seed);
        engine.insert(&dims, metric).unwrap();
    }
    assert_eq!(
        assert_delta_matches_refold(&mut engine, "post-recovery ingest"),
        850
    );
    engine.checkpoint().unwrap();
    assert_eq!(
        assert_delta_matches_refold(&mut engine, "post-recovery checkpoint"),
        850
    );
    engine.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
