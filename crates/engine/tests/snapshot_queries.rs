//! The query cascade runs unchanged over concurrently built cubes: both
//! `GroupThresholdQuery::run_cube` and MacroBase's `search_cube` accept
//! engine snapshots (which deref to `DataCube`) and answer exactly as
//! they would over a sequentially built cube.

use msketch_cube::{DynCube, GroupThresholdQuery};
use msketch_engine::{DynShardedCube, EngineConfig};
use msketch_macrobase::{MacroBaseConfig, MacroBaseEngine};
use msketch_sketches::SketchSpec;

/// 50 service groups of 2000 points each; group `svc-07` holds 40% of
/// its mass far above everything else while staying under 1% of the
/// total population — the paper's 30x outlier-rate setup.
fn ingest(insert: &mut dyn FnMut(&[&str], f64)) {
    for g in 0..50u64 {
        let svc = format!("svc-{g:02}");
        let hw = if g % 2 == 0 { "x1" } else { "x2" };
        for i in 0..2000u64 {
            let base = ((i * 13 + g * 7) % 100) as f64 + 1.0;
            let metric = if g == 7 && i % 5 < 2 {
                base + 1000.0
            } else {
                base
            };
            insert(&[&svc, hw], metric);
        }
    }
}

#[test]
fn snapshot_answers_match_sequential_cube() {
    let spec = SketchSpec::moments(10);
    let mut engine = DynShardedCube::new(
        spec.clone(),
        &["svc", "hw"],
        EngineConfig::with_shards(8).batch_rows(512),
    );
    ingest(&mut |dims, metric| engine.insert(dims, metric).unwrap());
    let snap = engine.snapshot().unwrap();

    let mut sequential = DynCube::from_spec(spec, &["svc", "hw"]);
    ingest(&mut |dims, metric| sequential.insert(dims, metric).unwrap());

    // Threshold cascade over the snapshot vs the sequential cube: same
    // hits (compared by *name*; ids may differ between dictionaries)
    // and the cascade actually engages on both.
    let query = GroupThresholdQuery::new(0.7, 800.0);
    let (snap_hits, snap_stats) = query.run_cube(&snap, &[0], &snap.no_filter()).unwrap();
    let (seq_hits, seq_stats) = query
        .run_cube(&sequential, &[0], &sequential.no_filter())
        .unwrap();
    let names = |cube: &DynCube, hits: &[Vec<u32>]| -> Vec<String> {
        let mut out: Vec<String> = hits
            .iter()
            .map(|k| {
                cube.dictionary(0)
                    .unwrap()
                    .decode(k[0])
                    .unwrap()
                    .to_string()
            })
            .collect();
        out.sort();
        out
    };
    assert_eq!(names(&snap, &snap_hits), vec!["svc-07".to_string()]);
    assert_eq!(names(&snap, &snap_hits), names(&sequential, &seq_hits));
    assert_eq!(snap_stats.total, 50);
    assert_eq!(seq_stats.total, 50);

    // MacroBase outlier-rate search directly over the snapshot.
    let mut mb = MacroBaseEngine::new(MacroBaseConfig::default());
    let reports = mb.search_cube(&*snap, &[0]).unwrap();
    assert_eq!(reports.len(), 1, "reports: {reports:?}");
    assert_eq!(reports[0].label, "svc=svc-07");
    assert_eq!(reports[0].count, 2000.0);
    assert_eq!(mb.stats().total, 50, "moments cells engage the cascade");
    assert!(
        mb.stats().maxent_evals <= 25,
        "cascade should prune most groups: {:?}",
        mb.stats()
    );

    // And the same search over the sequential cube agrees.
    let mut mb_seq = MacroBaseEngine::new(MacroBaseConfig::default());
    let seq_reports = mb_seq.search_cube(&sequential, &[0]).unwrap();
    assert_eq!(seq_reports, reports);
}
