//! Deterministic fault-injection suite for the engine: worker panics,
//! worker exits, WAL crash-recovery, and torn appends, all driven
//! through the `failpoint` registry so every failure fires at an exact,
//! repeatable point.
//!
//! Failpoints are process-global, so every test that arms one holds
//! [`FAILPOINT_LOCK`] for its whole body — otherwise a `1*panic` armed
//! here could fire inside a neighboring test's worker.

use msketch_engine::{DynShardedCube, EngineConfig, EngineError, WalConfig, WalError};
use msketch_sketches::{Sketch, SketchSpec};
use std::sync::Mutex;

static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn engine_1shard() -> DynShardedCube {
    DynShardedCube::new(
        SketchSpec::moments(8),
        &["app"],
        EngineConfig::with_shards(1).batch_rows(1024),
    )
}

fn ingest(engine: &mut DynShardedCube, rows: std::ops::Range<u64>) {
    for i in rows {
        engine
            .insert(&[["a", "b"][(i % 2) as usize]], i as f64)
            .unwrap();
    }
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("msketch-fault-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn worker_panic_mid_batch_is_supervised_and_snapshots_stay_consistent() {
    let _guard = FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut engine = engine_1shard();

    // Establish a checkpointed state inside the worker: 100 rows.
    ingest(&mut engine, 0..100);
    let snap = engine.snapshot().unwrap();
    assert_eq!(snap.row_count(), 100);

    // The next batch panics mid-insert. Supervision must roll the
    // shard back to the checkpoint, account for the discarded rows,
    // and keep the worker thread alive.
    failpoint::cfg("engine::worker_panic", "1*panic").unwrap();
    ingest(&mut engine, 100..150);
    engine.flush().unwrap();
    let snap = engine.snapshot().unwrap();
    failpoint::remove("engine::worker_panic");

    // The poisoned batch is gone, everything checkpointed survives.
    assert_eq!(snap.row_count(), 100);
    let stats = engine.stats();
    assert_eq!(stats.worker_restarts, 1);
    assert_eq!(stats.rows_lost, 50);
    assert_eq!(stats.rows_applied, 100);

    // The engine is still fully usable: later rows land normally.
    ingest(&mut engine, 150..175);
    let snap = engine.snapshot().unwrap();
    assert_eq!(snap.row_count(), 125);
    assert_eq!(engine.stats().rows_applied, 125);

    // And the answer over the surviving rows matches a clean engine
    // fed the same surviving history — supervision never leaves a
    // half-applied batch behind.
    let mut clean = engine_1shard();
    ingest(&mut clean, 0..100);
    ingest(&mut clean, 150..175);
    let expected = clean.snapshot().unwrap();
    let got = snap.rollup(&snap.no_filter()).unwrap().quantile(0.5);
    let want = expected
        .rollup(&expected.no_filter())
        .unwrap()
        .quantile(0.5);
    assert_eq!(got.to_bits(), want.to_bits());

    engine.shutdown().unwrap();
    clean.shutdown().unwrap();
}

#[test]
fn worker_exit_surfaces_disconnected_and_shutdown_still_joins() {
    let _guard = FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut engine = engine_1shard();
    ingest(&mut engine, 0..10);
    engine.flush().unwrap();
    // Barrier: the first batch is applied before the failpoint arms,
    // so exactly the second batch dies with the worker below.
    assert_eq!(engine.snapshot().unwrap().row_count(), 10);

    // The worker exits its loop on the next batch (a hard crash the
    // supervisor cannot catch — the restart path doesn't apply). The
    // `1*` count auto-disarms once fired; wait for that so the exit
    // has actually happened before asserting on its consequences.
    failpoint::cfg("engine::worker_exit", "1*return").unwrap();
    ingest(&mut engine, 10..20);
    engine.flush().unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while failpoint::list().contains(&"engine::worker_exit".to_string()) {
        assert!(
            std::time::Instant::now() < deadline,
            "worker never reached the armed failpoint"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // The dead worker is observable as Disconnected on the next barrier.
    match engine.snapshot() {
        Err(e) => assert_eq!(e, EngineError::Disconnected),
        Ok(_) => panic!("snapshot over a dead shard must fail"),
    }

    // The loss is visible in stats immediately (the snapshot barrier
    // above ordered us after the worker's exit): the in-flight batch
    // the worker died on is accounted, not silently dropped.
    let stats = engine.stats();
    assert_eq!(stats.rows_lost, 10);
    assert_eq!(stats.rows_applied, 10);

    // Shutdown never hangs and never panics: the exited thread joins
    // cleanly; the flush error (if any) is reported, not swallowed as
    // a wedge.
    match engine.shutdown() {
        Ok(()) | Err(EngineError::Disconnected) => {}
        Err(other) => panic!("unexpected shutdown error: {other}"),
    }
    assert!(engine.is_shut_down());
    assert!(matches!(engine.snapshot(), Err(EngineError::ShutDown)));
}

#[test]
fn crash_recovery_replays_checkpoints_bit_exactly() {
    let dir = temp_dir("recover-bitexact");
    let config = || EngineConfig::with_shards(2).batch_rows(256);
    let spec = SketchSpec::moments(8);

    // First life: two durable checkpoints, then 100 uncheckpointed
    // rows, then a "crash" (drop without a final checkpoint).
    let reference_quantile;
    {
        let (mut engine, report) =
            DynShardedCube::recover(spec.clone(), &["app"], config(), &dir, WalConfig::default())
                .unwrap();
        assert_eq!(report.segments_replayed, 0);
        ingest(&mut engine, 0..500);
        let snap = engine.checkpoint().unwrap();
        assert_eq!(snap.row_count(), 500);
        ingest(&mut engine, 500..800);
        let snap = engine.checkpoint().unwrap();
        assert_eq!(snap.row_count(), 800);
        reference_quantile = snap.rollup(&snap.no_filter()).unwrap().quantile(0.5);
        // These rows never reach a checkpoint: the crash loses exactly
        // them and nothing else.
        ingest(&mut engine, 800..900);
        engine.flush().unwrap();
    }

    // Second life: replay restores every checkpointed row and the
    // median answer bit-for-bit.
    let (mut engine, report) =
        DynShardedCube::recover(spec, &["app"], config(), &dir, WalConfig::default()).unwrap();
    assert_eq!(report.segments_replayed, 2);
    assert_eq!(report.rows_recovered, 800);
    assert_eq!(report.tail, None);
    let snap = engine.snapshot().unwrap();
    assert_eq!(snap.row_count(), 800);
    let recovered = snap.rollup(&snap.no_filter()).unwrap().quantile(0.5);
    assert_eq!(recovered.to_bits(), reference_quantile.to_bits());

    // Epochs resume past the last durable segment: new checkpoints
    // keep the log strictly ordered.
    ingest(&mut engine, 900..1000);
    let snap = engine.checkpoint().unwrap();
    assert_eq!(snap.row_count(), 900);
    engine.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_append_degrades_durability_but_not_queries() {
    let _guard = FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = temp_dir("torn-append");
    let spec = SketchSpec::moments(8);
    let config = || EngineConfig::with_shards(1).batch_rows(256);
    {
        let (mut engine, _) =
            DynShardedCube::recover(spec.clone(), &["app"], config(), &dir, WalConfig::default())
                .unwrap();
        ingest(&mut engine, 0..300);
        engine.checkpoint().unwrap();

        // The second checkpoint's append dies halfway through the
        // frame. The pane must still merge into the in-memory base —
        // only durability degrades.
        failpoint::cfg("engine::wal_torn_append", "1*return").unwrap();
        ingest(&mut engine, 300..500);
        let result = engine.checkpoint();
        failpoint::remove("engine::wal_torn_append");
        assert!(matches!(result, Err(EngineError::Wal(_))));
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.row_count(), 500, "pane must not vanish in memory");
        assert_eq!(engine.stats().wal_append_errors, 1);

        // The torn handle is poisoned: a later checkpoint must refuse
        // the append with a typed error — were it to keep writing past
        // the torn bytes, replay would silently drop every segment it
        // "durably" fsynced back there. Memory stays consistent.
        ingest(&mut engine, 500..600);
        let result = engine.checkpoint();
        assert!(matches!(
            result,
            Err(EngineError::Wal(WalError::Poisoned { .. }))
        ));
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.row_count(), 600, "pane must not vanish in memory");
        assert_eq!(engine.stats().wal_append_errors, 2);
    }

    // Recovery truncates the torn tail and replays the durable prefix.
    let (_engine, report) =
        DynShardedCube::recover(spec, &["app"], config(), &dir, WalConfig::default()).unwrap();
    assert_eq!(report.segments_replayed, 1);
    assert_eq!(report.rows_recovered, 300);
    assert!(report.truncated_bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
