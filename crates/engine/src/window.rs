//! Pane rotation into sliding-window serving (Section 7.2.2 of the
//! paper, on top of the concurrent write path).

use crate::sharded::ShardedCube;
use crate::snapshot::EngineSnapshot;
use crate::{EngineError, Result};
use moments_sketch::MomentsSketch;
use msketch_cube::TurnstileWindow;
use msketch_sketches::traits::SummaryFactory;
use msketch_sketches::MomentsBacked;

/// A sharded engine serving a sliding window of the last `w` panes.
///
/// Ingest flows through the wrapped [`ShardedCube`]; every
/// [`Self::rotate`] retires the current pane (all rows since the last
/// rotation) into a [`TurnstileWindow`], whose O(k) turnstile updates
/// (add the arriving pane's power sums, subtract the departing pane's)
/// keep the window aggregate current regardless of window length. The
/// retired pane snapshot is also returned, so callers can archive panes
/// (e.g. persist `DynCube` bytes) while serving.
///
/// Requires moments-backed cells — turnstile subtraction needs raw
/// power sums. [`Self::new`] rejects other backends with
/// [`EngineError::NonMomentsBackend`].
pub struct SlidingEngine<F>
where
    F: SummaryFactory + Clone + Send + 'static,
    F::Summary: Send + Sync + MomentsBacked,
{
    engine: ShardedCube<F>,
    window: TurnstileWindow,
}

impl<F> SlidingEngine<F>
where
    F: SummaryFactory + Clone + Send + 'static,
    F::Summary: Send + Sync + MomentsBacked,
{
    /// Serve a sliding window spanning `window_panes` panes over the
    /// given engine.
    ///
    /// Validated up front: a probe summary from the engine's factory must
    /// be moments-backed ([`EngineError::NonMomentsBackend`] otherwise),
    /// so a rotation can never fail on the backend *after* it has already
    /// destructively retired the pane.
    pub fn new(engine: ShardedCube<F>, window_panes: usize) -> Result<Self> {
        if engine.factory().build().as_moments().is_none() {
            return Err(EngineError::NonMomentsBackend);
        }
        Ok(SlidingEngine {
            engine,
            window: TurnstileWindow::new(window_panes.max(1)),
        })
    }

    /// The wrapped engine, for ingest and ad-hoc snapshots.
    pub fn engine_mut(&mut self) -> &mut ShardedCube<F> {
        &mut self.engine
    }

    /// Ingest one row into the current pane.
    pub fn insert(&mut self, dim_values: &[&str], metric: f64) -> Result<()> {
        self.engine.insert(dim_values, metric)
    }

    /// Close the current pane: fold its cells into one all-data moments
    /// sketch, push it into the window, and return the retired pane
    /// snapshot alongside the up-to-date window aggregate.
    ///
    /// A pane that saw no rows retires as an *empty* sketch, not an
    /// error: quiet periods are ordinary in time-windowed serving, and
    /// an empty pane must still advance the turnstile (so old panes age
    /// out on schedule) and keep the window aggregate well-defined —
    /// queries over an all-empty window report zero rows rather than
    /// failing.
    pub fn rotate(&mut self) -> Result<(EngineSnapshot<F>, &MomentsSketch)> {
        let pane = self.engine.rotate_pane()?;
        // Deterministic fold order (decoded value tuples): bit-identical
        // pane aggregates for identical pane contents, as everywhere
        // else in the read path.
        let mut agg: Option<MomentsSketch> = None;
        for (_, cell) in pane.cells_sorted() {
            let sketch = cell.as_moments().ok_or(EngineError::NonMomentsBackend)?;
            match &mut agg {
                None => agg = Some(sketch.clone()),
                Some(a) => a.merge(sketch),
            }
        }
        // No cells this pane: push a zero-row sketch from the factory
        // (validated moments-backed at construction).
        let agg = match agg {
            Some(agg) => agg,
            None => self
                .engine
                .factory()
                .build()
                .as_moments()
                .ok_or(EngineError::NonMomentsBackend)?
                .clone(),
        };
        Ok((pane, self.window.push(agg)))
    }

    /// The current window aggregate (`None` before the first rotation).
    pub fn aggregate(&self) -> Option<&MomentsSketch> {
        self.window.aggregate()
    }

    /// Panes retired so far.
    pub fn pane_count(&self) -> usize {
        self.window.pane_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use msketch_sketches::traits::FnFactory;
    use msketch_sketches::{MSketchSummary, SketchSpec};

    #[test]
    fn window_tracks_last_w_panes() {
        let factory: FnFactory<MSketchSummary, fn() -> MSketchSummary> =
            FnFactory(|| MSketchSummary::new(8));
        let engine = ShardedCube::new(
            factory,
            &["host"],
            EngineConfig::with_shards(3).batch_rows(16),
        );
        let mut sliding = SlidingEngine::new(engine, 3).unwrap();
        for pane in 0..6u64 {
            for i in 0..200u64 {
                let host = ["h1", "h2", "h3", "h4"][(i % 4) as usize];
                sliding.insert(&[host], (pane * 200 + i) as f64).unwrap();
            }
            let (retired, agg) = sliding.rotate().unwrap();
            assert_eq!(retired.row_count(), 200);
            let expect = 200.0 * (pane + 1).min(3) as f64;
            assert_eq!(agg.count(), expect, "pane {pane}");
        }
        assert_eq!(sliding.pane_count(), 6);
        // Window covers panes 3..6: values 600..1200, so the window
        // median sits near 900 while the all-time median is ~600.
        let agg = sliding.aggregate().unwrap();
        let median = agg.quantile(0.5).unwrap();
        assert!((median - 900.0).abs() < 60.0, "median {median}");
    }

    #[test]
    fn dyn_moments_cells_fold_and_others_error() {
        let engine = DynEngine::new(
            SketchSpec::moments(8),
            &["host"],
            EngineConfig::with_shards(2).batch_rows(8),
        );
        let mut sliding = SlidingEngine::new(engine, 2).unwrap();
        for i in 0..100u64 {
            sliding.insert(&["a"], i as f64).unwrap();
        }
        let (_, agg) = sliding.rotate().unwrap();
        assert_eq!(agg.count(), 100.0);

        // Non-moments backends are rejected at construction, before any
        // row could be lost to a failed rotation.
        let engine = DynEngine::new(
            SketchSpec::tdigest(5.0),
            &["host"],
            EngineConfig::with_shards(2).batch_rows(8),
        );
        assert!(matches!(
            SlidingEngine::new(engine, 2),
            Err(EngineError::NonMomentsBackend)
        ));
    }

    #[test]
    fn empty_pane_rotates_into_a_zero_row_aggregate() {
        let engine = DynEngine::new(
            SketchSpec::moments(8),
            &["host"],
            EngineConfig::with_shards(1),
        );
        let mut sliding = SlidingEngine::new(engine, 2).unwrap();
        // Rotating with no rows is not an error: the pane retires empty
        // and the window aggregate reports zero rows.
        let (retired, agg) = sliding.rotate().unwrap();
        assert_eq!(retired.row_count(), 0);
        assert_eq!(agg.count(), 0.0);
        assert_eq!(sliding.pane_count(), 1);
        // A quiet pane between busy ones still ages data out on
        // schedule: with a 2-pane window, one busy pane followed by two
        // quiet rotations leaves nothing in the window.
        for i in 0..50u64 {
            sliding.insert(&["h"], i as f64).unwrap();
        }
        let (_, agg) = sliding.rotate().unwrap();
        assert_eq!(agg.count(), 50.0);
        let (_, agg) = sliding.rotate().unwrap();
        assert_eq!(agg.count(), 50.0, "busy pane still inside the window");
        let (_, agg) = sliding.rotate().unwrap();
        assert_eq!(agg.count(), 0.0, "busy pane aged out by quiet panes");
    }

    type DynEngine = crate::DynShardedCube;
}
