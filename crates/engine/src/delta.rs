//! The engine's persistent merged cube, refreshed by shard deltas.
//!
//! Before delta snapshots, every `snapshot()` cloned `base` and folded a
//! full clone of each shard's live cube into it — O(total cells) per
//! refresh regardless of how little changed. [`MergedState`] replaces
//! that: it keeps *two* merged cubes (double buffer) and, each refresh,
//! brings the non-published buffer up to date by applying only the
//! cells each shard touched since its last delta, then publishes it.
//! Readers keep the previously published `Arc` for as long as they
//! need it; the engine never blocks on them.
//!
//! Correctness hangs on two invariants:
//!
//! * **Shard ownership** — `route_hash(dims) % shards` assigns every
//!   cell to exactly one shard, so a delta's cell value (the shard's
//!   complete live summary for that cell) merged over `base_cells`
//!   *replaces* the published value with exactly what a full refold
//!   would compute: one `base ⊕ shard` merge. Replays are idempotent.
//! * **Identical dictionaries** — both buffers apply every refresh
//!   exactly once in the same order (the trailing buffer catches up by
//!   replaying the resolved [`AppliedDelta`] before taking new work),
//!   so their dictionaries assign identical ids forever and
//!   `base_cells` keys are valid in either buffer's id space.

use crate::snapshot::EngineSnapshot;
use crate::Result;
use msketch_cube::hash::FxHashMap;
use msketch_cube::{AppliedDelta, CubeDelta, DataCube};
use msketch_sketches::traits::SummaryFactory;
use std::sync::Arc;

/// Double-buffered merged cube plus the retained-pane base layer.
pub(crate) struct MergedState<F: SummaryFactory> {
    /// The two merged cubes. `buffers[publish]` is what readers see;
    /// the other trails by exactly `lag`.
    buffers: [Arc<DataCube<F>>; 2],
    publish: usize,
    /// What the non-published buffer is missing: the resolved result of
    /// the last refresh, replayed (cheap inserts, no merges) before the
    /// buffer takes new deltas.
    lag: Option<AppliedDelta<F::Summary>>,
    /// Cells rotated out of the live shards by past checkpoints, keyed
    /// in the merged cubes' (shared) id space. The part of the merged
    /// cube no live shard re-ships in its deltas.
    base_cells: FxHashMap<Vec<u32>, Arc<F::Summary>>,
    base_rows: u64,
    /// Per-shard absolute live row counts, refreshed from each delta.
    pane_rows: Vec<u64>,
}

impl<F> MergedState<F>
where
    F: SummaryFactory + Clone,
{
    pub(crate) fn new(factory: F, dim_names: &[&str], shards: usize) -> Self {
        MergedState::from_base(&DataCube::new(factory, dim_names), shards)
    }

    /// Seed the merged state from a recovered base cube (WAL replay):
    /// every recovered cell becomes a base cell, and both buffers start
    /// as shallow clones of the recovered cube.
    pub(crate) fn from_base(base: &DataCube<F>, shards: usize) -> Self {
        let base_cells = base
            .cells_shared()
            .map(|(k, s)| (k.clone(), Arc::clone(s)))
            .collect();
        MergedState {
            buffers: [Arc::new(base.clone()), Arc::new(base.clone())],
            publish: 0,
            lag: None,
            base_cells,
            base_rows: base.row_count(),
            pane_rows: vec![0; shards],
        }
    }

    /// The currently published snapshot, restamped with `epoch`.
    pub(crate) fn published(&self, epoch: u64) -> EngineSnapshot<F> {
        EngineSnapshot::new_shared(epoch, Arc::clone(&self.buffers[self.publish]))
    }

    /// Apply one delta per shard to the trailing buffer and publish it.
    /// Returns the new snapshot and the number of delta cells applied.
    pub(crate) fn refresh(
        &mut self,
        deltas: &[CubeDelta<F::Summary>],
        epoch: u64,
    ) -> Result<(EngineSnapshot<F>, u64)> {
        let back = 1 - self.publish;
        let cube = Arc::make_mut(&mut self.buffers[back]);
        if let Some(lag) = self.lag.take() {
            cube.replay_applied(&lag);
        }
        let mut new_lag = AppliedDelta::empty(cube.dim_count());
        let mut cells_applied = 0u64;
        for (delta, pane_rows) in deltas.iter().zip(self.pane_rows.iter_mut()) {
            cells_applied += delta.cells.len() as u64;
            let applied = cube.apply_delta(delta, &self.base_cells)?;
            *pane_rows = delta.pane_rows;
            new_lag.absorb(applied);
        }
        let rows = self.base_rows + self.pane_rows.iter().sum::<u64>();
        cube.set_row_count(rows);
        new_lag.rows = rows;
        self.lag = Some(new_lag);
        self.publish = back;
        Ok((self.published(epoch), cells_applied))
    }

    /// Fold a rotated pane into the base layer (the checkpoint path).
    ///
    /// The pane carries each retiring cell's *complete* live summary,
    /// so applying its full delta over the old base replaces any value
    /// a past refresh left in the buffer with the exact `base ⊕ pane`
    /// merge a refold would compute.
    pub(crate) fn rotate_into_base(
        &mut self,
        pane: &DataCube<F>,
        epoch: u64,
    ) -> Result<EngineSnapshot<F>> {
        let back = 1 - self.publish;
        let cube = Arc::make_mut(&mut self.buffers[back]);
        if let Some(lag) = self.lag.take() {
            cube.replay_applied(&lag);
        }
        let mut applied = cube.apply_delta(&pane.full_delta(), &self.base_cells)?;
        for (key, summary) in &applied.cells {
            self.base_cells.insert(key.clone(), Arc::clone(summary));
        }
        self.base_rows += pane.row_count();
        for rows in &mut self.pane_rows {
            *rows = 0;
        }
        cube.set_row_count(self.base_rows);
        applied.rows = self.base_rows;
        self.lag = Some(applied);
        self.publish = back;
        Ok(self.published(epoch))
    }

    /// Drop the live shards' contributions without folding them into
    /// the base (the plain `rotate_pane` path — the caller keeps the
    /// pane). Both buffers are rebuilt base-only; dictionaries are kept
    /// so `base_cells` keys stay valid.
    pub(crate) fn rotate_discard(&mut self) {
        let cube = self.base_only_cube();
        self.buffers = [Arc::new(cube.clone()), Arc::new(cube)];
        self.publish = 0;
        self.lag = None;
        for rows in &mut self.pane_rows {
            *rows = 0;
        }
    }

    /// A fresh cube holding only the base layer, sharing the published
    /// buffer's dictionaries (and therefore its id space).
    pub(crate) fn base_only_cube(&self) -> DataCube<F> {
        let mut cube = self.buffers[self.publish].schema_clone();
        for (key, summary) in &self.base_cells {
            cube.insert_cell_shared(key.clone(), Arc::clone(summary));
        }
        cube.set_row_count(self.base_rows);
        cube
    }
}
