//! The sharded write path: routing, per-shard channels, worker threads.

use crate::snapshot::EngineSnapshot;
use crate::supervisor::{worker_loop, EngineStats, SharedStats};
use crate::wal::{RecoveryReport, Wal, WalConfig};
use crate::{EngineError, Result};
use crossbeam::channel::{self, Receiver, Sender};
use msketch_cube::hash::route_hash;
use msketch_cube::{ColumnarBatch, DataCube, DynCube};
use msketch_sketches::traits::SummaryFactory;
use msketch_sketches::SketchSpec;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tuning knobs for [`ShardedCube`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of shard workers (and shard-local cubes).
    pub shards: usize,
    /// Rows buffered per shard before a batch is shipped. Larger batches
    /// amortize channel and dictionary-intern costs; smaller batches
    /// shorten the ingest-to-snapshot visibility lag.
    pub batch_rows: usize,
    /// Bounded channel depth per shard, in batches. Backpressure: a
    /// writer flushing into a full shard blocks until the worker drains.
    pub channel_batches: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: std::thread::available_parallelism().map_or(4, |n| n.get()),
            // Measured on the ingest bench: 16k-row batches amortize
            // channel and pool-intern costs well past the crossover
            // where sharded ingest beats row-at-a-time insertion.
            batch_rows: 16384,
            channel_batches: 8,
        }
    }
}

impl EngineConfig {
    /// Config with `shards` workers and default batching.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
            ..Default::default()
        }
    }

    /// Override the rows-per-batch threshold.
    pub fn batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = rows.max(1);
        self
    }
}

/// Control and data messages flowing to one shard worker. Channels are
/// FIFO per sender, so a control message acts as a barrier: the reply
/// reflects every batch the same sender shipped before it.
pub(crate) enum ShardMsg<F: SummaryFactory> {
    /// Ingest a columnar batch.
    Batch(ColumnarBatch),
    /// Reply with a clone of the shard-local cube; keep ingesting.
    Snapshot(Sender<DataCube<F>>),
    /// Reply with the shard-local cube, replacing it with a fresh one.
    Rotate(Sender<DataCube<F>>),
    /// Stop the worker thread, even while other writers still hold
    /// senders. Batches already queued ahead of this marker are ingested
    /// first (per-sender FIFO); anything arriving after it is dropped.
    Shutdown,
}

/// An ingest handle: routes rows to shards and buffers them into
/// per-shard columnar batches.
///
/// Obtain extra handles with [`ShardedCube::writer`] to ingest from
/// several threads; each handle buffers independently. Rows become
/// visible to snapshots once flushed (explicitly via [`Self::flush`],
/// or implicitly when a shard buffer reaches `batch_rows`).
pub struct ShardWriter<F: SummaryFactory> {
    senders: Vec<Sender<ShardMsg<F>>>,
    buffers: Vec<ColumnarBatch>,
    dims: usize,
    batch_rows: usize,
    /// Run cache: telemetry streams repeat dimension tuples in bursts,
    /// so the previous row's tuple and shard are kept to skip routing
    /// and re-encoding on repeats.
    last_dims: Vec<String>,
    last_shard: usize,
    last_valid: bool,
}

impl<F: SummaryFactory> ShardWriter<F> {
    fn new(senders: Vec<Sender<ShardMsg<F>>>, dims: usize, batch_rows: usize) -> Self {
        let buffers = senders.iter().map(|_| ColumnarBatch::new(dims)).collect();
        ShardWriter {
            senders,
            buffers,
            dims,
            batch_rows,
            last_dims: vec![String::new(); dims],
            last_shard: 0,
            last_valid: false,
        }
    }

    /// Buffer one row, shipping the destination shard's batch if it
    /// reached the configured size.
    ///
    /// Routing hashes only the dimension values ([`route_hash`]), so
    /// every occurrence of a tuple — from any writer, in any run — lands
    /// on the same shard, which is what keeps each cube cell owned by
    /// exactly one shard.
    pub fn insert(&mut self, dim_values: &[&str], metric: f64) -> Result<()> {
        if dim_values.len() != self.dims {
            return Err(EngineError::Cube(msketch_cube::Error::DimensionMismatch {
                expected: self.dims,
                got: dim_values.len(),
            }));
        }
        let shard =
            if self.last_valid && dim_values.iter().zip(&self.last_dims).all(|(v, l)| *v == l) {
                // Repeated tuple: reuse the cached route and duplicate the
                // previous encoding (falls through after a flush emptied the
                // buffer).
                let shard = self.last_shard;
                if self.buffers[shard].push_repeat(metric) {
                    if self.buffers[shard].len() >= self.batch_rows {
                        self.flush_shard(shard)?;
                    }
                    return Ok(());
                }
                shard
            } else {
                let shard = (route_hash(dim_values) % self.senders.len() as u64) as usize;
                for (slot, v) in self.last_dims.iter_mut().zip(dim_values) {
                    slot.clear();
                    slot.push_str(v);
                }
                self.last_shard = shard;
                self.last_valid = true;
                shard
            };
        self.buffers[shard].push_row(dim_values, metric);
        if self.buffers[shard].len() >= self.batch_rows {
            self.flush_shard(shard)?;
        }
        Ok(())
    }

    /// Ship every non-empty buffered batch to its shard.
    pub fn flush(&mut self) -> Result<()> {
        for shard in 0..self.senders.len() {
            self.flush_shard(shard)?;
        }
        Ok(())
    }

    /// Rows buffered but not yet shipped (thus invisible to snapshots).
    pub fn pending(&self) -> usize {
        self.buffers.iter().map(ColumnarBatch::len).sum()
    }

    fn flush_shard(&mut self, shard: usize) -> Result<()> {
        if self.buffers[shard].is_empty() {
            return Ok(());
        }
        let batch = std::mem::replace(&mut self.buffers[shard], ColumnarBatch::new(self.dims));
        self.senders[shard]
            .send(ShardMsg::Batch(batch))
            .map_err(|_| EngineError::Disconnected)
    }
}

impl<F: SummaryFactory> Drop for ShardWriter<F> {
    fn drop(&mut self) {
        // Best-effort: don't silently lose buffered rows.
        let _ = self.flush();
    }
}

/// The sharded concurrent ingestion engine.
///
/// `N` worker threads each own a shard-local [`DataCube`] (its own
/// dictionaries, its own cells) and drain columnar batches from a
/// bounded channel. The engine itself is an ingest handle (it embeds a
/// [`ShardWriter`]); additional concurrent writers come from
/// [`Self::writer`]. Readers never touch the live shards: they query
/// [`EngineSnapshot`]s, which are immutable merged cubes built by
/// [`Self::snapshot`] — workers keep ingesting while the caller folds,
/// so writers never block queries and queries never block writers.
///
/// Worker threads exit when the engine and every extra writer have been
/// dropped (the channels disconnect).
pub struct ShardedCube<F>
where
    F: SummaryFactory + Clone + Send + 'static,
    F::Summary: Send,
{
    factory: F,
    dim_names: Vec<String>,
    config: EngineConfig,
    writer: ShardWriter<F>,
    workers: Vec<JoinHandle<()>>,
    epoch: u64,
    /// Checkpointed history: the union of every pane retired through
    /// [`Self::checkpoint`] (seeded from WAL replay after
    /// [`Self::recover`]). Folded into full snapshots; panes are
    /// disjoint row sets, so base + live shards never double-counts.
    base: Option<DataCube<F>>,
    /// Durable pane log, when attached via [`Self::recover`].
    wal: Option<Wal>,
    /// Supervision counters shared with the shard workers.
    stats: Arc<SharedStats>,
}

/// A sharded engine over runtime-chosen (boxed) sketch cells; snapshots
/// are [`msketch_cube::DynCube`]s.
pub type DynShardedCube = ShardedCube<SketchSpec>;

impl<F> ShardedCube<F>
where
    F: SummaryFactory + Clone + Send + 'static,
    F::Summary: Send,
{
    /// Spawn `config.shards` workers, each owning an empty cube with the
    /// given dimension names.
    pub fn new(factory: F, dim_names: &[&str], config: EngineConfig) -> Self {
        let shards = config.shards.max(1);
        let stats = Arc::new(SharedStats::default());
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::bounded::<ShardMsg<F>>(config.channel_batches.max(1));
            let cube = DataCube::new(factory.clone(), dim_names);
            let factory = factory.clone();
            let names: Vec<String> = dim_names.iter().map(|s| s.to_string()).collect();
            let stats = Arc::clone(&stats);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("msketch-shard-{shard}"))
                    .spawn(move || worker_loop(rx, cube, factory, names, stats))
                    // lint:allow(panic): thread spawn fails only on OS
                    // resource exhaustion during engine construction — no
                    // channel peer exists yet to park, and no caller has
                    // a meaningful recovery short of aborting.
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        let writer = ShardWriter::new(senders, dim_names.len(), config.batch_rows.max(1));
        ShardedCube {
            factory,
            dim_names: dim_names.iter().map(|s| s.to_string()).collect(),
            config,
            writer,
            workers,
            epoch: 0,
            base: None,
            wal: None,
            stats,
        }
    }

    pub(crate) fn factory(&self) -> &F {
        &self.factory
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.config.shards.max(1)
    }

    /// Dimension names of the schema.
    pub fn dim_names(&self) -> &[String] {
        &self.dim_names
    }

    /// Epochs advanced so far (one per snapshot or pane rotation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine's current epoch — the epoch the *next* snapshot will
    /// carry, minus one. Comparing this against a served
    /// [`EngineSnapshot::epoch`](crate::EngineSnapshot::epoch) yields the
    /// snapshot's staleness in epochs (the serving layer's `epoch_lag`).
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Has [`Self::shutdown`] already run (or the engine been torn
    /// down)?
    pub fn is_shut_down(&self) -> bool {
        self.workers.is_empty()
    }

    /// Typed guard: every mutating entry point refuses with
    /// [`EngineError::ShutDown`] once the workers are gone, instead of
    /// surfacing the accidental-looking `Disconnected` a dead channel
    /// would produce.
    fn ensure_running(&self) -> Result<()> {
        if self.is_shut_down() {
            return Err(EngineError::ShutDown);
        }
        Ok(())
    }

    /// Supervision and durability counters: worker restarts, rows lost
    /// to rollbacks, rows applied, WAL append totals.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            worker_restarts: self.stats.restarts(),
            rows_lost: self.stats.rows_lost(),
            rows_applied: self.stats.rows_applied(),
            wal_segments: self.wal.as_ref().map_or(0, Wal::segments_appended),
            wal_bytes: self.wal.as_ref().map_or(0, Wal::bytes_appended),
            wal_append_errors: self.wal.as_ref().map_or(0, Wal::append_errors),
            shut_down: self.is_shut_down(),
        }
    }

    /// Is a durable pane log attached (engine built via
    /// [`Self::recover`])?
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// Ingest one row through the engine's own writer.
    pub fn insert(&mut self, dim_values: &[&str], metric: f64) -> Result<()> {
        self.ensure_running()?;
        self.writer.insert(dim_values, metric)
    }

    /// Ship this handle's buffered rows to their shards.
    pub fn flush(&mut self) -> Result<()> {
        self.ensure_running()?;
        self.writer.flush()
    }

    /// An additional ingest handle for another writer thread.
    pub fn writer(&self) -> ShardWriter<F> {
        ShardWriter::new(
            self.writer.senders.clone(),
            self.dim_names.len(),
            self.config.batch_rows.max(1),
        )
    }

    /// Take an epoch-stamped snapshot: flush this handle, have every
    /// worker clone its shard-local cube, and fold the clones into one
    /// immutable merged cube.
    ///
    /// Isolation: per-sender channel FIFO makes the snapshot request a
    /// barrier, so the snapshot contains *every* row this handle (and
    /// any writer that flushed before the barrier reached the shard)
    /// shipped, and *no* row shipped after. Workers resume ingesting the
    /// moment they have replied; the O(cells) fold runs on the calling
    /// thread, so concurrent writers are never blocked by readers.
    pub fn snapshot(&mut self) -> Result<EngineSnapshot<F>> {
        self.collect(false)
    }

    /// Retire the current pane: like [`Self::snapshot`], but every
    /// worker hands over its cube and starts a fresh one, so the
    /// returned snapshot holds exactly the rows since the previous
    /// rotation (or engine start). Used for time-pane serving — see
    /// [`crate::SlidingEngine`].
    pub fn rotate_pane(&mut self) -> Result<EngineSnapshot<F>> {
        self.collect(true)
    }

    fn empty_cube(&self) -> DataCube<F> {
        let names: Vec<&str> = self.dim_names.iter().map(String::as_str).collect();
        DataCube::new(self.factory.clone(), &names)
    }

    fn collect(&mut self, rotate: bool) -> Result<EngineSnapshot<F>> {
        self.ensure_running()?;
        self.writer.flush()?;
        // Ask every shard first, then await the replies: workers clone /
        // swap their cubes concurrently with each other.
        let mut replies: Vec<Receiver<DataCube<F>>> = Vec::with_capacity(self.workers.len());
        for sender in &self.writer.senders {
            let (tx, rx) = channel::bounded(1);
            let msg = if rotate {
                ShardMsg::Rotate(tx)
            } else {
                ShardMsg::Snapshot(tx)
            };
            sender.send(msg).map_err(|_| EngineError::Disconnected)?;
            replies.push(rx);
        }
        // A full snapshot starts from the checkpointed base (the union
        // of retired panes); a rotation holds only the live pane, so it
        // starts empty. Base rows and live-shard rows are disjoint.
        let mut merged = match (&self.base, rotate) {
            (Some(base), false) => base.clone(),
            _ => self.empty_cube(),
        };
        // Fold in shard order: each cell lives on exactly one shard, so
        // every snapshot cell is built by one clone + per-shard-ordered
        // merges — equal ingest histories produce bit-identical
        // snapshots.
        for rx in replies {
            let shard_cube = rx.recv().map_err(|_| EngineError::Disconnected)?;
            merged.merge_cube(&shard_cube)?;
        }
        self.epoch += 1;
        Ok(EngineSnapshot::new(self.epoch, merged))
    }

    /// Stop every shard worker and join its thread.
    ///
    /// Flushes this handle's buffered rows first, then sends each shard
    /// a shutdown marker; per-sender FIFO guarantees every batch this
    /// handle shipped is ingested before the worker exits. Unlike
    /// relying on channel disconnection, the marker stops workers even
    /// while extra [`ShardWriter`]s still hold senders — those writers'
    /// subsequent sends fail with [`EngineError::Disconnected`] rather
    /// than leaving a parked worker behind on exit (the server Ctrl-C
    /// path). Also runs on drop.
    ///
    /// Calling again after a shutdown returns
    /// [`EngineError::ShutDown`] — as do `insert`, `flush`, `snapshot`
    /// and `rotate_pane` — so a caller holding a stale handle sees a
    /// typed "engine is gone" instead of a misleading channel error.
    pub fn shutdown(&mut self) -> Result<()> {
        self.ensure_running()?;
        // Keep going even if a shard already died: the remaining workers
        // still need their marker and join.
        let flush_result = self.writer.flush();
        for sender in &self.writer.senders {
            let _ = sender.send(ShardMsg::Shutdown);
        }
        let mut panicked = false;
        for worker in self.workers.drain(..) {
            panicked |= worker.join().is_err();
        }
        if panicked {
            return Err(EngineError::Disconnected);
        }
        flush_result
    }
}

impl<F> Drop for ShardedCube<F>
where
    F: SummaryFactory + Clone + Send + 'static,
    F::Summary: Send,
{
    fn drop(&mut self) {
        // Join rather than detach: a dropped engine (or a server torn
        // down by Ctrl-C) must not leak parked worker threads. The
        // embedded writer's own Drop then finds empty buffers.
        let _ = self.shutdown();
    }
}

impl DynShardedCube {
    /// Open (or create) the durable pane WAL under `dir`, replay its
    /// valid segment prefix into the engine's base cube, and return
    /// the recovered engine plus a [`RecoveryReport`].
    ///
    /// This is "new with durability": on a fresh directory it returns
    /// an empty engine with the WAL attached; after a crash it returns
    /// an engine whose snapshots are *bit-exact* with the last
    /// completed [`Self::checkpoint`] before the crash (replay folds
    /// the same panes with the same `merge_cube` calls in the same
    /// order). Torn tails are truncated, mid-log corruption shortens
    /// the prefix and is surfaced in [`RecoveryReport::tail`] — replay
    /// never panics and corruption never fails the open.
    ///
    /// The engine's epoch resumes from the last replayed segment's, so
    /// segment epochs stay strictly increasing across restarts.
    pub fn recover(
        spec: SketchSpec,
        dim_names: &[&str],
        config: EngineConfig,
        dir: impl AsRef<Path>,
        wal_config: WalConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let (wal, base, report) = Wal::open(dir.as_ref(), wal_config).map_err(EngineError::Wal)?;
        if let Some(recovered) = &base {
            // Eager schema/backend checks: a WAL from a different
            // engine must fail loudly now, not at the first snapshot's
            // merge.
            if recovered.dim_names() != dim_names {
                return Err(EngineError::Cube(msketch_cube::Error::SchemaMismatch {
                    expected: dim_names.iter().map(|s| s.to_string()).collect(),
                    got: recovered.dim_names().to_vec(),
                }));
            }
            if recovered.spec().kind() != spec.kind() {
                return Err(EngineError::Cube(msketch_cube::Error::BackendMismatch {
                    expected: spec.build().name(),
                    got: recovered.spec().build().name(),
                }));
            }
        }
        let mut engine = Self::new(spec, dim_names, config);
        engine.epoch = report.last_epoch;
        engine.base = base;
        engine.wal = Some(wal);
        Ok((engine, report))
    }

    /// Retire the current pane durably: rotate it out of the shards,
    /// append it to the WAL (when attached), merge it into the base
    /// cube, and return a full snapshot (base = every checkpointed row
    /// so far).
    ///
    /// This is the serving layer's refresh primitive when durability
    /// is on: each checkpoint logs only the rows since the previous
    /// one, so WAL traffic is proportional to ingest, not to history.
    /// A WAL append failure degrades durability for this pane only —
    /// the pane is still merged into the in-memory base before the
    /// error is returned, so queries stay consistent and a later
    /// recovery simply replays one pane fewer. The WAL handle itself
    /// guarantees the failure stays *that* contained: it rewinds the
    /// log to the last good frame boundary (or, failing that, poisons
    /// itself and rejects every later append with
    /// [`WalError::Poisoned`](crate::WalError::Poisoned)), so a
    /// damaged tail can never silently swallow the checkpoints
    /// appended after it.
    pub fn checkpoint(&mut self) -> Result<EngineSnapshot<SketchSpec>> {
        let pane = self.collect(true)?;
        let epoch = pane.epoch();
        let mut wal_failure = None;
        if pane.row_count() > 0 {
            if let Some(wal) = self.wal.as_mut() {
                // Log before apply: a crash between the append and the
                // merge replays the pane from disk instead of losing it.
                if let Err(e) = wal.append(epoch, &pane.cube().to_bytes()) {
                    wal_failure = Some(e);
                }
            }
            let names: Vec<&str> = self.dim_names.iter().map(String::as_str).collect();
            let base = self
                .base
                .get_or_insert_with(|| DynCube::from_spec(self.factory.clone(), &names));
            base.merge_cube(pane.cube())?;
        }
        if let Some(e) = wal_failure {
            return Err(EngineError::Wal(e));
        }
        let full = self.base.clone().unwrap_or_else(|| self.empty_cube());
        Ok(EngineSnapshot::new(epoch, full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msketch_sketches::traits::FnFactory;
    use msketch_sketches::{MSketchSummary, QuantileSummary, Sketch, SketchKind};

    type MomentsFactory = FnFactory<MSketchSummary, fn() -> MSketchSummary>;

    fn moments_factory() -> MomentsFactory {
        FnFactory(|| MSketchSummary::new(8))
    }

    fn row(i: u64) -> ([&'static str; 2], f64) {
        let country = ["US", "CA", "MX", "BR", "JP"][(i % 5) as usize];
        let version = ["v1", "v2", "v3"][(i % 3) as usize];
        (
            [country, version],
            (i % 911) as f64 + if version == "v3" { 400.0 } else { 0.0 },
        )
    }

    fn sequential_reference(n: u64) -> DataCube<MomentsFactory> {
        let mut cube = DataCube::new(moments_factory(), &["country", "version"]);
        for i in 0..n {
            let (dims, metric) = row(i);
            cube.insert(&dims, metric).unwrap();
        }
        cube
    }

    #[test]
    fn snapshot_is_bit_exact_vs_sequential_at_8_shards() {
        let reference = sequential_reference(50_000);
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(8).batch_rows(1024),
        );
        for i in 0..50_000 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.row_count(), reference.row_count());
        assert_eq!(snap.cell_count(), reference.cell_count());
        let a = reference.rollup(&reference.no_filter()).unwrap();
        let b = snap.rollup(&snap.no_filter()).unwrap();
        assert_eq!(a.count(), b.count());
        for phi in [0.01, 0.25, 0.5, 0.9, 0.99] {
            assert_eq!(
                a.quantile(phi).to_bits(),
                b.quantile(phi).to_bits(),
                "phi {phi}"
            );
        }
    }

    #[test]
    fn snapshots_see_flushed_rows_and_writers_continue() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(3).batch_rows(64),
        );
        for i in 0..1000 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let first = engine.snapshot().unwrap();
        assert_eq!(first.row_count(), 1000);
        // Keep ingesting after the snapshot; the old snapshot is
        // unaffected, a new one sees everything.
        for i in 1000..3000 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let second = engine.snapshot().unwrap();
        assert_eq!(first.row_count(), 1000);
        assert_eq!(second.row_count(), 3000);
        assert_eq!(second.epoch(), 2);
    }

    #[test]
    fn concurrent_writers_land_all_rows() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(4).batch_rows(128),
        );
        let mut writers: Vec<ShardWriter<_>> = (0..3).map(|_| engine.writer()).collect();
        std::thread::scope(|scope| {
            for (w, writer) in writers.iter_mut().enumerate() {
                scope.spawn(move || {
                    for i in 0..5000u64 {
                        let (dims, metric) = row(i * 3 + w as u64);
                        writer.insert(&dims, metric).unwrap();
                    }
                    writer.flush().unwrap();
                });
            }
        });
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.row_count(), 15_000);
        let all = snap.rollup(&snap.no_filter()).unwrap();
        assert_eq!(all.count(), 15_000);
    }

    #[test]
    fn rotate_pane_splits_the_stream() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(2).batch_rows(32),
        );
        for i in 0..600 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let pane1 = engine.rotate_pane().unwrap();
        for i in 600..1000 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let pane2 = engine.rotate_pane().unwrap();
        assert_eq!(pane1.row_count(), 600);
        assert_eq!(pane2.row_count(), 400);
        assert_eq!(pane2.epoch(), 2);
        // Panes recombine into the full population.
        let mut whole = pane1.into_cube();
        whole.merge_cube(&pane2).unwrap();
        assert_eq!(whole.row_count(), 1000);
    }

    #[test]
    fn dyn_engine_serves_runtime_backends() {
        let mut engine = DynShardedCube::new(
            SketchSpec::moments(10),
            &["region"],
            EngineConfig::with_shards(2).batch_rows(100),
        );
        for i in 0..4000u64 {
            engine
                .insert(&[["eu", "us", "ap"][(i % 3) as usize]], (i % 500) as f64)
                .unwrap();
        }
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.spec().kind(), SketchKind::Moments);
        assert_eq!(snap.row_count(), 4000);
        // The snapshot is a full DynCube: it serializes like any other.
        let restored = msketch_cube::DynCube::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored.row_count(), 4000);
        let q = snap.rollup(&snap.no_filter()).unwrap().quantile(0.5);
        let r = restored
            .rollup(&restored.no_filter())
            .unwrap()
            .quantile(0.5);
        assert_eq!(q.to_bits(), r.to_bits());
    }

    #[test]
    fn unflushed_rows_are_invisible_until_flush() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(2).batch_rows(1_000_000),
        );
        let mut side = engine.writer();
        let (dims, metric) = row(7);
        side.insert(&dims, metric).unwrap();
        assert_eq!(side.pending(), 1);
        // The engine's own snapshot flushes only its own buffer.
        let snap = engine.snapshot().unwrap();
        assert!(matches!(
            snap.rollup(&snap.no_filter()),
            Err(msketch_cube::Error::EmptyResult)
        ));
        side.flush().unwrap();
        assert_eq!(side.pending(), 0);
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.row_count(), 1);
    }

    #[test]
    fn shutdown_joins_workers_and_later_calls_error() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(3).batch_rows(8),
        );
        let mut side = engine.writer();
        for i in 0..100 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        assert!(!engine.is_shut_down());
        // Shutdown stops workers even while `side` still holds senders —
        // the leak the Drop-ordering fix exists to prevent.
        engine.shutdown().unwrap();
        assert!(engine.is_shut_down());
        // Every later engine call reports the typed ShutDown error —
        // including a second shutdown (regression: it used to succeed
        // silently) and ingest (it used to buffer, then fail at flush
        // with a misleading Disconnected).
        assert!(matches!(engine.shutdown(), Err(EngineError::ShutDown)));
        assert!(matches!(engine.snapshot(), Err(EngineError::ShutDown)));
        assert!(matches!(engine.rotate_pane(), Err(EngineError::ShutDown)));
        assert!(matches!(engine.flush(), Err(EngineError::ShutDown)));
        let (dims, metric) = row(0);
        assert!(matches!(
            engine.insert(&dims, metric),
            Err(EngineError::ShutDown)
        ));
        assert!(engine.stats().shut_down);
        // A detached writer has no engine handle to consult; its sends
        // land on dead channels and surface as Disconnected.
        side.insert(&dims, metric).unwrap(); // buffered locally
        assert!(matches!(side.flush(), Err(EngineError::Disconnected)));
    }

    #[test]
    fn checkpoint_accumulates_panes_into_full_snapshots() {
        // No WAL attached: checkpoint still retires panes into the
        // base cube and returns cumulative snapshots.
        let mut engine = DynShardedCube::new(
            SketchSpec::moments(8),
            &["region"],
            EngineConfig::with_shards(2).batch_rows(16),
        );
        assert!(!engine.wal_attached());
        for i in 0..300u64 {
            engine
                .insert(&[["eu", "us"][(i % 2) as usize]], i as f64)
                .unwrap();
        }
        let first = engine.checkpoint().unwrap();
        assert_eq!(first.row_count(), 300);
        for i in 300..500u64 {
            engine
                .insert(&[["eu", "us"][(i % 2) as usize]], i as f64)
                .unwrap();
        }
        let second = engine.checkpoint().unwrap();
        assert_eq!(second.row_count(), 500, "base accumulates both panes");
        assert_eq!(second.epoch(), 2);
        // A plain snapshot also sees the base plus (empty) live shards.
        assert_eq!(engine.snapshot().unwrap().row_count(), 500);
        // An empty checkpoint appends nothing and keeps the base.
        let third = engine.checkpoint().unwrap();
        assert_eq!(third.row_count(), 500);
    }

    #[test]
    fn stats_start_clean() {
        let engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(2),
        );
        let stats = engine.stats();
        assert_eq!(stats, EngineStats::default());
    }

    #[test]
    fn shutdown_ingests_rows_queued_ahead_of_the_marker() {
        // The shutdown marker is a FIFO barrier: rows flushed before it
        // are never dropped. Observable via snapshot-before-shutdown.
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(2).batch_rows(4),
        );
        for i in 0..50 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.row_count(), 50);
        engine.shutdown().unwrap();
    }

    #[test]
    fn writer_arity_is_checked() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(1),
        );
        assert!(matches!(
            engine.insert(&["US"], 1.0),
            Err(EngineError::Cube(
                msketch_cube::Error::DimensionMismatch { .. }
            ))
        ));
    }

    #[test]
    fn merge_from_boxed_cells_still_works_after_snapshot() {
        // Regression guard: snapshots of dyn engines hold Box<dyn Sketch>
        // cells; merging two snapshot rollups must use the checked path.
        let mut engine = DynShardedCube::new(
            SketchSpec::moments(8),
            &["k"],
            EngineConfig::with_shards(2).batch_rows(10),
        );
        for i in 0..100u64 {
            engine.insert(&["a"], i as f64).unwrap();
        }
        let snap = engine.snapshot().unwrap();
        let mut a = snap.rollup(&snap.no_filter()).unwrap();
        let b = snap.rollup(&snap.no_filter()).unwrap();
        a.merge_from(&b);
        assert_eq!(a.count(), 200);
    }
}
