//! The sharded write path: routing, per-shard channels, worker threads.

use crate::delta::MergedState;
use crate::snapshot::EngineSnapshot;
use crate::supervisor::{worker_loop, EngineStats, SharedStats};
use crate::wal::{RecoveryReport, Wal, WalConfig, WalCounters};
use crate::{EngineError, Result};
use crossbeam::channel::{self, Receiver, Sender};
use msketch_cube::hash::{route_hash, FxHashMap};
use msketch_cube::{CubeDelta, DataCube, InternedBatch, InternedColumn};
use msketch_sketches::traits::SummaryFactory;
use msketch_sketches::SketchSpec;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs for [`ShardedCube`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of shard workers (and shard-local cubes).
    pub shards: usize,
    /// Rows buffered per shard before a batch is shipped. Larger batches
    /// amortize channel and dictionary-intern costs; smaller batches
    /// shorten the ingest-to-snapshot visibility lag.
    pub batch_rows: usize,
    /// Bounded channel depth per shard, in batches. Backpressure: a
    /// writer flushing into a full shard blocks until the worker drains.
    pub channel_batches: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: std::thread::available_parallelism().map_or(4, |n| n.get()),
            // Measured on the ingest bench: 16k-row batches amortize
            // channel and pool-intern costs well past the crossover
            // where sharded ingest beats row-at-a-time insertion.
            batch_rows: 16384,
            channel_batches: 8,
        }
    }
}

impl EngineConfig {
    /// Config with `shards` workers and default batching.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
            ..Default::default()
        }
    }

    /// Override the rows-per-batch threshold.
    pub fn batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = rows.max(1);
        self
    }
}

/// Control and data messages flowing to one shard worker. Channels are
/// FIFO per sender, so a control message acts as a barrier: the reply
/// reflects every batch the same sender shipped before it.
pub(crate) enum ShardMsg<F: SummaryFactory> {
    /// Ingest a pre-interned columnar batch.
    Interned(InternedBatch),
    /// Reply with a clone of the shard-local cube; keep ingesting.
    Snapshot(Sender<DataCube<F>>),
    /// Reply with a delta of the cells touched since the last delta
    /// reply; keep ingesting.
    Delta(Sender<CubeDelta<F::Summary>>),
    /// Reply with the shard-local cube, replacing it with a fresh one.
    Rotate(Sender<DataCube<F>>),
    /// Stop the worker thread, even while other writers still hold
    /// senders. Batches already queued ahead of this marker are ingested
    /// first (per-sender FIFO); anything arriving after it is dropped.
    Shutdown,
}

/// One shard's buffered, pre-interned rows in a [`ShardWriter`].
struct PendingBatch {
    columns: Vec<InternedColumn>,
    metrics: Vec<f64>,
}

impl PendingBatch {
    fn new(dims: usize) -> Self {
        PendingBatch {
            columns: (0..dims)
                .map(|_| InternedColumn {
                    ids: Vec::new(),
                    news: Vec::new(),
                })
                .collect(),
            metrics: Vec::new(),
        }
    }
}

/// An ingest handle: routes rows to shards, interns dimension values
/// into per-shard writer pools, and buffers pre-interned batches.
///
/// Obtain extra handles with [`ShardedCube::writer`] to ingest from
/// several threads; each handle buffers and interns independently —
/// ingest threads never share a lock or a dictionary. A value's pool id
/// is assigned once per `(writer, shard, dimension)` and shipped as a
/// "new" exactly once; after that the writer ships bare `u32` ids and
/// the shard worker decodes them through its per-writer table, so the
/// per-row string hashing that used to run on the worker happens on the
/// writer's thread, once per distinct value.
///
/// Rows become visible to snapshots once flushed (explicitly via
/// [`Self::flush`], or implicitly when a shard buffer reaches
/// `batch_rows`).
pub struct ShardWriter<F: SummaryFactory> {
    senders: Vec<Sender<ShardMsg<F>>>,
    pending: Vec<PendingBatch>,
    /// Per-shard, per-dimension value→pool-id memos. Never reset: pool
    /// id spaces only grow, so cached ids stay valid across flushes,
    /// worker rollbacks, and pane rotations.
    memos: Vec<Vec<FxHashMap<String, u32>>>,
    /// Engine-assigned writer id; workers index their decode tables by
    /// it.
    id: u32,
    dims: usize,
    batch_rows: usize,
    /// Run cache: telemetry streams repeat dimension tuples in bursts,
    /// so the previous row's tuple, shard, and pool ids are kept to
    /// skip routing and memo lookups on repeats.
    last_dims: Vec<String>,
    last_ids: Vec<u32>,
    last_shard: usize,
    last_valid: bool,
}

impl<F: SummaryFactory> ShardWriter<F> {
    fn new(senders: Vec<Sender<ShardMsg<F>>>, id: u32, dims: usize, batch_rows: usize) -> Self {
        let pending = senders.iter().map(|_| PendingBatch::new(dims)).collect();
        let memos = senders
            .iter()
            .map(|_| vec![FxHashMap::default(); dims])
            .collect();
        ShardWriter {
            senders,
            pending,
            memos,
            id,
            dims,
            batch_rows,
            last_dims: vec![String::new(); dims],
            last_ids: Vec::with_capacity(dims),
            last_shard: 0,
            last_valid: false,
        }
    }

    /// Buffer one row, shipping the destination shard's batch if it
    /// reached the configured size.
    ///
    /// Routing hashes only the dimension values ([`route_hash`]), so
    /// every occurrence of a tuple — from any writer, in any run — lands
    /// on the same shard, which is what keeps each cube cell owned by
    /// exactly one shard.
    pub fn insert(&mut self, dim_values: &[&str], metric: f64) -> Result<()> {
        if dim_values.len() != self.dims {
            return Err(EngineError::Cube(msketch_cube::Error::DimensionMismatch {
                expected: self.dims,
                got: dim_values.len(),
            }));
        }
        if self.last_valid && dim_values.iter().zip(&self.last_dims).all(|(v, l)| *v == l) {
            // Repeated tuple: the cached pool ids are permanently valid
            // (memos never shrink), so push them straight through.
            let shard = self.last_shard;
            let pending = &mut self.pending[shard];
            for (column, &id) in pending.columns.iter_mut().zip(&self.last_ids) {
                column.ids.push(id);
            }
            pending.metrics.push(metric);
            if pending.metrics.len() >= self.batch_rows {
                self.flush_shard(shard)?;
            }
            return Ok(());
        }
        let shard = (route_hash(dim_values) % self.senders.len() as u64) as usize;
        self.last_ids.clear();
        let pending = &mut self.pending[shard];
        let memos = &mut self.memos[shard];
        for ((memo, column), v) in memos.iter_mut().zip(&mut pending.columns).zip(dim_values) {
            let id = match memo.get(*v) {
                Some(&id) => id,
                None => {
                    // First sighting for this (writer, shard, dim):
                    // assign the next dense pool id and ship the value
                    // itself once, in this batch's news.
                    let id = memo.len() as u32;
                    memo.insert((*v).to_string(), id);
                    column.news.push((*v).to_string());
                    id
                }
            };
            column.ids.push(id);
            self.last_ids.push(id);
        }
        pending.metrics.push(metric);
        for (slot, v) in self.last_dims.iter_mut().zip(dim_values) {
            slot.clear();
            slot.push_str(v);
        }
        self.last_shard = shard;
        self.last_valid = true;
        if self.pending[shard].metrics.len() >= self.batch_rows {
            self.flush_shard(shard)?;
        }
        Ok(())
    }

    /// Ship every non-empty buffered batch to its shard.
    pub fn flush(&mut self) -> Result<()> {
        for shard in 0..self.senders.len() {
            self.flush_shard(shard)?;
        }
        Ok(())
    }

    /// Rows buffered but not yet shipped (thus invisible to snapshots).
    pub fn pending(&self) -> usize {
        self.pending.iter().map(|p| p.metrics.len()).sum()
    }

    fn flush_shard(&mut self, shard: usize) -> Result<()> {
        if self.pending[shard].metrics.is_empty() {
            return Ok(());
        }
        let batch = std::mem::replace(&mut self.pending[shard], PendingBatch::new(self.dims));
        self.senders[shard]
            .send(ShardMsg::Interned(InternedBatch {
                writer: self.id,
                columns: batch.columns,
                metrics: batch.metrics,
            }))
            .map_err(|_| EngineError::Disconnected)
    }
}

impl<F: SummaryFactory> Drop for ShardWriter<F> {
    fn drop(&mut self) {
        // Best-effort: don't silently lose buffered rows.
        let _ = self.flush();
    }
}

/// The sharded concurrent ingestion engine.
///
/// `N` worker threads each own a shard-local [`DataCube`] (its own
/// dictionaries, its own cells) and drain pre-interned batches from a
/// bounded channel. The engine itself is an ingest handle (it embeds a
/// [`ShardWriter`]); additional concurrent writers come from
/// [`Self::writer`]. Readers never touch the live shards: they query
/// [`EngineSnapshot`]s — immutable merged cubes the engine maintains
/// persistently and refreshes *incrementally*: each [`Self::snapshot`]
/// asks every shard only for the cells it touched since its last reply
/// and applies those deltas to a double-buffered merged cube, so
/// refresh cost tracks the change rate, not the cube size. The full
/// refold is still available as [`Self::snapshot_refold`] (and is what
/// recovery replays), and the two are bit-exact.
///
/// Worker threads exit when the engine and every extra writer have been
/// dropped (the channels disconnect).
pub struct ShardedCube<F>
where
    F: SummaryFactory + Clone + Send + 'static,
    F::Summary: Send + Sync,
{
    factory: F,
    dim_names: Vec<String>,
    config: EngineConfig,
    writer: ShardWriter<F>,
    workers: Vec<JoinHandle<()>>,
    epoch: u64,
    /// The persistently maintained merged cube (double-buffered), plus
    /// the base layer of panes retired through [`Self::checkpoint`]
    /// (seeded from WAL replay after [`Self::recover`]).
    merged: MergedState<F>,
    /// Durable pane log, when attached via [`Self::recover`]. Shared
    /// with [`StagedCheckpoint`]s so the fsync can run after the engine
    /// lock is released by the serving layer.
    wal: Option<Arc<Mutex<Wal>>>,
    /// Lock-free view of the WAL's append counters, so [`Self::stats`]
    /// never waits on an in-flight append.
    wal_counters: Option<Arc<WalCounters>>,
    /// Dense writer-id allocator for [`Self::writer`] handles.
    writer_seq: Arc<AtomicU32>,
    /// Supervision counters shared with the shard workers.
    stats: Arc<SharedStats>,
    /// Cells folded by full-refold refreshes (engine-thread work the
    /// delta path avoids).
    snapshot_cells_folded: u64,
    /// Delta cells applied by incremental refreshes.
    delta_cells_applied: u64,
    /// Wall-clock micros of the most recent refresh.
    last_refresh_micros: u64,
    /// Refresh-latency recorder, attached via [`Self::set_obs`]; every
    /// snapshot / refold / checkpoint observes its wall-clock cost.
    refresh_seconds: Option<msketch_obs::Recorder>,
}

/// A sharded engine over runtime-chosen (boxed) sketch cells; snapshots
/// are [`msketch_cube::DynCube`]s.
pub type DynShardedCube = ShardedCube<SketchSpec>;

impl<F> ShardedCube<F>
where
    F: SummaryFactory + Clone + Send + 'static,
    F::Summary: Send + Sync,
{
    /// Spawn `config.shards` workers, each owning an empty cube with the
    /// given dimension names.
    pub fn new(factory: F, dim_names: &[&str], config: EngineConfig) -> Self {
        let shards = config.shards.max(1);
        let stats = Arc::new(SharedStats::default());
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::bounded::<ShardMsg<F>>(config.channel_batches.max(1));
            let cube = DataCube::new(factory.clone(), dim_names);
            let factory = factory.clone();
            let names: Vec<String> = dim_names.iter().map(|s| s.to_string()).collect();
            let stats = Arc::clone(&stats);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("msketch-shard-{shard}"))
                    .spawn(move || worker_loop(shard, rx, cube, factory, names, stats))
                    // lint:allow(panic): thread spawn fails only on OS
                    // resource exhaustion during engine construction — no
                    // channel peer exists yet to park, and no caller has
                    // a meaningful recovery short of aborting.
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        let writer = ShardWriter::new(senders, 0, dim_names.len(), config.batch_rows.max(1));
        let merged = MergedState::new(factory.clone(), dim_names, shards);
        ShardedCube {
            factory,
            dim_names: dim_names.iter().map(|s| s.to_string()).collect(),
            config,
            writer,
            workers,
            epoch: 0,
            merged,
            wal: None,
            wal_counters: None,
            writer_seq: Arc::new(AtomicU32::new(1)),
            stats,
            snapshot_cells_folded: 0,
            delta_cells_applied: 0,
            last_refresh_micros: 0,
            refresh_seconds: None,
        }
    }

    /// Attach observability: refresh latencies land in the
    /// `msketch_engine_refresh_seconds` recorder, shard-worker
    /// restarts / abandonments and WAL append failures emit warn
    /// events the moment their counters increment, and WAL fsyncs
    /// record into `msketch_wal_fsync_seconds`. Call after
    /// construction (or after [`DynShardedCube::recover`], so the WAL
    /// handle picks up its hooks too); child spans need no attachment
    /// at all — they follow the calling thread's active trace.
    pub fn set_obs(&mut self, obs: &msketch_obs::Obs) {
        self.refresh_seconds = Some(obs.registry.recorder("msketch_engine_refresh_seconds", &[]));
        *self
            .stats
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some((*obs.trace).clone());
        if let Some(wal) = &self.wal {
            wal.lock().unwrap_or_else(PoisonError::into_inner).set_obs(
                obs.registry.recorder("msketch_wal_fsync_seconds", &[]),
                (*obs.trace).clone(),
            );
        }
    }

    /// Record one refresh's wall-clock cost (no-op before `set_obs`).
    fn observe_refresh(&self, started: Instant) {
        if let Some(rec) = &self.refresh_seconds {
            rec.observe(started.elapsed().as_secs_f64());
        }
    }

    pub(crate) fn factory(&self) -> &F {
        &self.factory
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.config.shards.max(1)
    }

    /// Dimension names of the schema.
    pub fn dim_names(&self) -> &[String] {
        &self.dim_names
    }

    /// Epochs advanced so far (one per snapshot or pane rotation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine's current epoch — the epoch the *next* snapshot will
    /// carry, minus one. Comparing this against a served
    /// [`EngineSnapshot::epoch`](crate::EngineSnapshot::epoch) yields the
    /// snapshot's staleness in epochs (the serving layer's `epoch_lag`).
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Has [`Self::shutdown`] already run (or the engine been torn
    /// down)?
    pub fn is_shut_down(&self) -> bool {
        self.workers.is_empty()
    }

    /// Typed guard: every mutating entry point refuses with
    /// [`EngineError::ShutDown`] once the workers are gone, instead of
    /// surfacing the accidental-looking `Disconnected` a dead channel
    /// would produce.
    fn ensure_running(&self) -> Result<()> {
        if self.is_shut_down() {
            return Err(EngineError::ShutDown);
        }
        Ok(())
    }

    /// Supervision and durability counters: worker restarts, rows lost
    /// to rollbacks, rows applied, WAL append totals, refresh costs.
    pub fn stats(&self) -> EngineStats {
        let wal = self.wal_counters.as_deref();
        EngineStats {
            worker_restarts: self.stats.restarts(),
            rows_lost: self.stats.rows_lost(),
            rows_applied: self.stats.rows_applied(),
            wal_segments: wal.map_or(0, WalCounters::segments_appended),
            wal_bytes: wal.map_or(0, WalCounters::bytes_appended),
            wal_append_errors: wal.map_or(0, WalCounters::append_errors),
            snapshot_cells_folded: self.snapshot_cells_folded,
            delta_cells_applied: self.delta_cells_applied,
            last_refresh_micros: self.last_refresh_micros,
            shut_down: self.is_shut_down(),
        }
    }

    /// Is a durable pane log attached (engine built via
    /// [`Self::recover`])?
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// Ingest one row through the engine's own writer.
    pub fn insert(&mut self, dim_values: &[&str], metric: f64) -> Result<()> {
        self.ensure_running()?;
        self.writer.insert(dim_values, metric)
    }

    /// Ship this handle's buffered rows to their shards.
    pub fn flush(&mut self) -> Result<()> {
        self.ensure_running()?;
        self.writer.flush()
    }

    /// An additional ingest handle for another writer thread. Each
    /// handle gets a fresh writer id and its own per-shard intern
    /// pools; handles never contend with each other or with the engine.
    pub fn writer(&self) -> ShardWriter<F> {
        ShardWriter::new(
            self.writer.senders.clone(),
            self.writer_seq.fetch_add(1, Ordering::Relaxed),
            self.dim_names.len(),
            self.config.batch_rows.max(1),
        )
    }

    /// Take an epoch-stamped snapshot by *delta refresh*: flush this
    /// handle, have every worker ship only the cells it touched since
    /// its last delta reply, and apply those deltas to the engine's
    /// persistent double-buffered merged cube.
    ///
    /// Isolation: per-sender channel FIFO makes the delta request a
    /// barrier, so the snapshot contains *every* row this handle (and
    /// any writer that flushed before the barrier reached the shard)
    /// shipped, and *no* row shipped after. Workers resume ingesting
    /// the moment they have replied; delta application runs on the
    /// calling thread, and its cost tracks the cells *changed* since
    /// the previous refresh — not the cube size. Bit-exact with
    /// [`Self::snapshot_refold`]: each delta cell is the owning shard's
    /// complete live summary, merged over the checkpointed base in the
    /// same single `merge_from` a refold performs.
    pub fn snapshot(&mut self) -> Result<EngineSnapshot<F>> {
        self.ensure_running()?;
        let mut span = msketch_obs::span("engine::snapshot");
        let started = Instant::now();
        self.writer.flush()?;
        // Ask every shard first, then await the replies: workers build
        // their deltas concurrently with each other.
        let mut replies: Vec<Receiver<CubeDelta<F::Summary>>> =
            Vec::with_capacity(self.workers.len());
        for sender in &self.writer.senders {
            let (tx, rx) = channel::bounded(1);
            sender
                .send(ShardMsg::Delta(tx))
                .map_err(|_| EngineError::Disconnected)?;
            replies.push(rx);
        }
        let mut deltas = Vec::with_capacity(replies.len());
        for rx in replies {
            deltas.push(rx.recv().map_err(|_| EngineError::Disconnected)?);
        }
        self.epoch += 1;
        let (snap, cells_applied) = self.merged.refresh(&deltas, self.epoch)?;
        self.delta_cells_applied += cells_applied;
        self.last_refresh_micros = started.elapsed().as_micros() as u64;
        self.observe_refresh(started);
        span.field("epoch", self.epoch);
        span.field("delta_cells", cells_applied);
        Ok(snap)
    }

    /// Take an epoch-stamped snapshot the pre-delta way: clone every
    /// shard's full live cube and fold the clones over the base.
    /// O(total cells) on the calling thread regardless of what changed;
    /// kept as the reference implementation the delta path is verified
    /// against (and for one-shot consumers that don't want to grow the
    /// engine's persistent merged cube).
    pub fn snapshot_refold(&mut self) -> Result<EngineSnapshot<F>> {
        self.ensure_running()?;
        let _span = msketch_obs::span("engine::snapshot_refold");
        let started = Instant::now();
        self.writer.flush()?;
        let replies = self.request_cubes(false)?;
        let mut merged = self.merged.base_only_cube();
        self.snapshot_cells_folded += merged.cell_count() as u64;
        for rx in replies {
            let shard_cube = rx.recv().map_err(|_| EngineError::Disconnected)?;
            self.snapshot_cells_folded += shard_cube.cell_count() as u64;
            merged.merge_cube(&shard_cube)?;
        }
        self.epoch += 1;
        self.last_refresh_micros = started.elapsed().as_micros() as u64;
        self.observe_refresh(started);
        Ok(EngineSnapshot::new(self.epoch, merged))
    }

    /// Retire the current pane: every worker hands over its cube and
    /// starts a fresh one, and the returned snapshot holds exactly the
    /// rows since the previous rotation (or engine start) — the
    /// checkpointed base is *not* included. Used for time-pane serving —
    /// see [`crate::SlidingEngine`].
    pub fn rotate_pane(&mut self) -> Result<EngineSnapshot<F>> {
        self.ensure_running()?;
        self.writer.flush()?;
        let pane = self.collect_pane()?;
        self.epoch += 1;
        // The live shards are empty now; drop their contributions from
        // the persistent merged cube.
        self.merged.rotate_discard();
        Ok(EngineSnapshot::new(self.epoch, pane))
    }

    fn empty_cube(&self) -> DataCube<F> {
        let names: Vec<&str> = self.dim_names.iter().map(String::as_str).collect();
        DataCube::new(self.factory.clone(), &names)
    }

    fn request_cubes(&self, rotate: bool) -> Result<Vec<Receiver<DataCube<F>>>> {
        // Ask every shard first, then await the replies: workers clone /
        // swap their cubes concurrently with each other.
        let mut replies = Vec::with_capacity(self.workers.len());
        for sender in &self.writer.senders {
            let (tx, rx) = channel::bounded(1);
            let msg = if rotate {
                ShardMsg::Rotate(tx)
            } else {
                ShardMsg::Snapshot(tx)
            };
            sender.send(msg).map_err(|_| EngineError::Disconnected)?;
            replies.push(rx);
        }
        Ok(replies)
    }

    /// Rotate every shard and fold the retired cubes into one pane.
    /// Fold order is shard order, so equal ingest histories produce
    /// bit-identical panes.
    fn collect_pane(&mut self) -> Result<DataCube<F>> {
        let replies = self.request_cubes(true)?;
        let mut pane = self.empty_cube();
        for rx in replies {
            let shard_cube = rx.recv().map_err(|_| EngineError::Disconnected)?;
            self.snapshot_cells_folded += shard_cube.cell_count() as u64;
            pane.merge_cube(&shard_cube)?;
        }
        Ok(pane)
    }

    /// Stop every shard worker and join its thread.
    ///
    /// Flushes this handle's buffered rows first, then sends each shard
    /// a shutdown marker; per-sender FIFO guarantees every batch this
    /// handle shipped is ingested before the worker exits. Unlike
    /// relying on channel disconnection, the marker stops workers even
    /// while extra [`ShardWriter`]s still hold senders — those writers'
    /// subsequent sends fail with [`EngineError::Disconnected`] rather
    /// than leaving a parked worker behind on exit (the server Ctrl-C
    /// path). Also runs on drop.
    ///
    /// Calling again after a shutdown returns
    /// [`EngineError::ShutDown`] — as do `insert`, `flush`, `snapshot`
    /// and `rotate_pane` — so a caller holding a stale handle sees a
    /// typed "engine is gone" instead of a misleading channel error.
    pub fn shutdown(&mut self) -> Result<()> {
        self.ensure_running()?;
        // Keep going even if a shard already died: the remaining workers
        // still need their marker and join.
        let flush_result = self.writer.flush();
        for sender in &self.writer.senders {
            let _ = sender.send(ShardMsg::Shutdown);
        }
        let mut panicked = false;
        for worker in self.workers.drain(..) {
            panicked |= worker.join().is_err();
        }
        if panicked {
            return Err(EngineError::Disconnected);
        }
        flush_result
    }
}

impl<F> Drop for ShardedCube<F>
where
    F: SummaryFactory + Clone + Send + 'static,
    F::Summary: Send + Sync,
{
    fn drop(&mut self) {
        // Join rather than detach: a dropped engine (or a server torn
        // down by Ctrl-C) must not leak parked worker threads. The
        // embedded writer's own Drop then finds empty buffers.
        let _ = self.shutdown();
    }
}

/// A checkpoint whose in-memory half is done but whose WAL append has
/// not happened yet ([`DynShardedCube::stage_checkpoint`]).
///
/// The split exists for the serving layer: staging (rotate + fold into
/// the merged cube) needs the engine, but the append — and above all
/// its fsync — does not. A server stages under its engine lock, drops
/// the lock, then calls [`Self::commit`], so a slow fsync never stalls
/// concurrent ingest. Callers that don't care (tests, CLIs) use
/// [`DynShardedCube::checkpoint`], which stages and commits in one
/// call.
///
/// Dropping a staged checkpoint without committing skips the WAL
/// append for that pane: durability for the pane is lost (recovery
/// replays up to the previous commit), memory is unaffected.
pub struct StagedCheckpoint {
    epoch: u64,
    snapshot: EngineSnapshot<SketchSpec>,
    bytes: Option<Vec<u8>>,
    wal: Option<Arc<Mutex<Wal>>>,
}

impl StagedCheckpoint {
    /// The epoch this checkpoint advanced the engine to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The full merged snapshot (base including this pane), already
    /// valid to serve — durability of the pane is all that's pending.
    pub fn snapshot(&self) -> &EngineSnapshot<SketchSpec> {
        &self.snapshot
    }

    /// Append the staged pane to the WAL (fsync per the WAL's policy)
    /// and return the snapshot. No-op without a WAL or for an empty
    /// pane. An append failure degrades durability for this pane only —
    /// the snapshot is already live in the engine's memory — and the
    /// WAL handle rewinds to the last good frame boundary (or poisons
    /// itself), so a damaged tail can never silently swallow the
    /// checkpoints appended after it.
    pub fn commit(self) -> crate::Result<EngineSnapshot<SketchSpec>> {
        if let (Some(bytes), Some(wal)) = (&self.bytes, &self.wal) {
            let mut guard = wal.lock().unwrap_or_else(PoisonError::into_inner);
            guard.append(self.epoch, bytes).map_err(EngineError::Wal)?;
        }
        Ok(self.snapshot)
    }
}

impl DynShardedCube {
    /// Open (or create) the durable pane WAL under `dir`, replay its
    /// valid segment prefix into the engine's base cube, and return
    /// the recovered engine plus a [`RecoveryReport`].
    ///
    /// This is "new with durability": on a fresh directory it returns
    /// an empty engine with the WAL attached; after a crash it returns
    /// an engine whose snapshots are *bit-exact* with the last
    /// committed [`Self::checkpoint`] before the crash (replay folds
    /// the same panes with the same `merge_cube` calls in the same
    /// order, and the delta refresh path performs the identical
    /// `base ⊕ shard` merges on top). Torn tails are truncated, mid-log
    /// corruption shortens the prefix and is surfaced in
    /// [`RecoveryReport::tail`] — replay never panics and corruption
    /// never fails the open.
    ///
    /// The engine's epoch resumes from the last replayed segment's, so
    /// segment epochs stay strictly increasing across restarts.
    pub fn recover(
        spec: SketchSpec,
        dim_names: &[&str],
        config: EngineConfig,
        dir: impl AsRef<Path>,
        wal_config: WalConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let (wal, base, report) = Wal::open(dir.as_ref(), wal_config).map_err(EngineError::Wal)?;
        if let Some(recovered) = &base {
            // Eager schema/backend checks: a WAL from a different
            // engine must fail loudly now, not at the first snapshot's
            // merge.
            if recovered.dim_names() != dim_names {
                return Err(EngineError::Cube(msketch_cube::Error::SchemaMismatch {
                    expected: dim_names.iter().map(|s| s.to_string()).collect(),
                    got: recovered.dim_names().to_vec(),
                }));
            }
            if recovered.spec().kind() != spec.kind() {
                return Err(EngineError::Cube(msketch_cube::Error::BackendMismatch {
                    expected: spec.build().name(),
                    got: recovered.spec().build().name(),
                }));
            }
        }
        let mut engine = Self::new(spec, dim_names, config);
        engine.epoch = report.last_epoch;
        if let Some(recovered) = &base {
            engine.merged = MergedState::from_base(recovered, engine.shard_count());
        }
        engine.wal_counters = Some(wal.counters());
        engine.wal = Some(Arc::new(Mutex::new(wal)));
        Ok((engine, report))
    }

    /// Retire the current pane into the engine's memory — rotate it out
    /// of the shards and fold it into the persistent merged cube's base
    /// layer — and hand back a [`StagedCheckpoint`] carrying the pane's
    /// serialized bytes for the durable half. The returned stage's
    /// snapshot is a full snapshot (base = every checkpointed row so
    /// far) and is immediately serveable.
    pub fn stage_checkpoint(&mut self) -> Result<StagedCheckpoint> {
        self.ensure_running()?;
        let mut span = msketch_obs::span("engine::stage_checkpoint");
        let started = Instant::now();
        self.writer.flush()?;
        let pane = self.collect_pane()?;
        self.epoch += 1;
        let bytes = (pane.row_count() > 0).then(|| pane.to_bytes());
        self.delta_cells_applied += pane.cell_count() as u64;
        let snapshot = self.merged.rotate_into_base(&pane, self.epoch)?;
        self.last_refresh_micros = started.elapsed().as_micros() as u64;
        self.observe_refresh(started);
        span.field("epoch", self.epoch);
        span.field("pane_rows", pane.row_count());
        Ok(StagedCheckpoint {
            epoch: self.epoch,
            snapshot,
            bytes,
            wal: self.wal.clone(),
        })
    }

    /// Retire the current pane durably: rotate it out of the shards,
    /// fold it into the base layer of the persistent merged cube, and
    /// append it to the WAL (when attached). Returns a full snapshot
    /// (base = every checkpointed row so far).
    ///
    /// This is [`Self::stage_checkpoint`] + [`StagedCheckpoint::commit`]
    /// in one call; each checkpoint logs only the rows since the
    /// previous one, so WAL traffic is proportional to ingest, not to
    /// history. A WAL append failure degrades durability for this pane
    /// only — the pane is already folded into the in-memory base before
    /// the error is returned, so queries stay consistent and a later
    /// recovery simply replays one pane fewer.
    pub fn checkpoint(&mut self) -> Result<EngineSnapshot<SketchSpec>> {
        self.stage_checkpoint()?.commit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msketch_sketches::traits::FnFactory;
    use msketch_sketches::{MSketchSummary, QuantileSummary, Sketch, SketchKind};

    type MomentsFactory = FnFactory<MSketchSummary, fn() -> MSketchSummary>;

    fn moments_factory() -> MomentsFactory {
        FnFactory(|| MSketchSummary::new(8))
    }

    fn row(i: u64) -> ([&'static str; 2], f64) {
        let country = ["US", "CA", "MX", "BR", "JP"][(i % 5) as usize];
        let version = ["v1", "v2", "v3"][(i % 3) as usize];
        (
            [country, version],
            (i % 911) as f64 + if version == "v3" { 400.0 } else { 0.0 },
        )
    }

    fn sequential_reference(n: u64) -> DataCube<MomentsFactory> {
        let mut cube = DataCube::new(moments_factory(), &["country", "version"]);
        for i in 0..n {
            let (dims, metric) = row(i);
            cube.insert(&dims, metric).unwrap();
        }
        cube
    }

    #[test]
    fn snapshot_is_bit_exact_vs_sequential_at_8_shards() {
        let reference = sequential_reference(50_000);
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(8).batch_rows(1024),
        );
        for i in 0..50_000 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.row_count(), reference.row_count());
        assert_eq!(snap.cell_count(), reference.cell_count());
        let a = reference.rollup(&reference.no_filter()).unwrap();
        let b = snap.rollup(&snap.no_filter()).unwrap();
        assert_eq!(a.count(), b.count());
        for phi in [0.01, 0.25, 0.5, 0.9, 0.99] {
            assert_eq!(
                a.quantile(phi).to_bits(),
                b.quantile(phi).to_bits(),
                "phi {phi}"
            );
        }
    }

    #[test]
    fn delta_snapshot_is_bit_exact_vs_full_refold() {
        // The tentpole invariant, at unit granularity: interleave
        // ingest with delta refreshes, then compare the persistent
        // merged cube against a from-scratch refold of the same shards.
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(4).batch_rows(256),
        );
        let mut at = 0u64;
        for round in 1..=5u64 {
            for _ in 0..(round * 700) {
                let (dims, metric) = row(at);
                engine.insert(&dims, metric).unwrap();
                at += 1;
            }
            let delta_snap = engine.snapshot().unwrap();
            let refold_snap = engine.snapshot_refold().unwrap();
            assert_eq!(delta_snap.row_count(), refold_snap.row_count());
            assert_eq!(delta_snap.cell_count(), refold_snap.cell_count());
            // The two snapshots' dictionaries may assign different ids;
            // compare cells by decoded name tuple.
            let decode = |cube: &DataCube<MomentsFactory>| {
                cube.cells()
                    .map(|(k, s)| {
                        let names: Vec<String> = k
                            .iter()
                            .enumerate()
                            .map(|(d, &id)| {
                                cube.dictionary(d)
                                    .ok()
                                    .and_then(|dict| dict.decode(id))
                                    .unwrap_or("")
                                    .to_string()
                            })
                            .collect();
                        (names, s.to_bytes())
                    })
                    .collect::<std::collections::HashMap<_, _>>()
            };
            let refold_cells = decode(refold_snap.cube());
            for (names, bytes) in decode(delta_snap.cube()) {
                assert_eq!(
                    refold_cells.get(&names),
                    Some(&bytes),
                    "cell {names:?} diverged from the refold"
                );
            }
        }
        let stats = engine.stats();
        assert!(stats.delta_cells_applied > 0);
        assert!(stats.snapshot_cells_folded > 0);
    }

    #[test]
    fn idle_delta_refreshes_apply_no_cells() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(2).batch_rows(64),
        );
        for i in 0..2000 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let first = engine.snapshot().unwrap();
        let applied_after_first = engine.stats().delta_cells_applied;
        assert!(applied_after_first > 0);
        // No new rows: the next refreshes ship empty deltas.
        let second = engine.snapshot().unwrap();
        let third = engine.snapshot().unwrap();
        assert_eq!(engine.stats().delta_cells_applied, applied_after_first);
        assert_eq!(second.row_count(), first.row_count());
        assert_eq!(third.epoch(), 3);
    }

    #[test]
    fn snapshots_see_flushed_rows_and_writers_continue() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(3).batch_rows(64),
        );
        for i in 0..1000 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let first = engine.snapshot().unwrap();
        assert_eq!(first.row_count(), 1000);
        // Keep ingesting after the snapshot; the old snapshot is
        // unaffected, a new one sees everything.
        for i in 1000..3000 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let second = engine.snapshot().unwrap();
        assert_eq!(first.row_count(), 1000);
        assert_eq!(second.row_count(), 3000);
        assert_eq!(second.epoch(), 2);
    }

    #[test]
    fn concurrent_writers_land_all_rows() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(4).batch_rows(128),
        );
        let mut writers: Vec<ShardWriter<_>> = (0..3).map(|_| engine.writer()).collect();
        std::thread::scope(|scope| {
            for (w, writer) in writers.iter_mut().enumerate() {
                scope.spawn(move || {
                    for i in 0..5000u64 {
                        let (dims, metric) = row(i * 3 + w as u64);
                        writer.insert(&dims, metric).unwrap();
                    }
                    writer.flush().unwrap();
                });
            }
        });
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.row_count(), 15_000);
        let all = snap.rollup(&snap.no_filter()).unwrap();
        assert_eq!(all.count(), 15_000);
    }

    #[test]
    fn rotate_pane_splits_the_stream() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(2).batch_rows(32),
        );
        for i in 0..600 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let pane1 = engine.rotate_pane().unwrap();
        for i in 600..1000 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let pane2 = engine.rotate_pane().unwrap();
        assert_eq!(pane1.row_count(), 600);
        assert_eq!(pane2.row_count(), 400);
        assert_eq!(pane2.epoch(), 2);
        // Panes recombine into the full population.
        let mut whole = pane1.into_cube();
        whole.merge_cube(&pane2).unwrap();
        assert_eq!(whole.row_count(), 1000);
    }

    #[test]
    fn snapshots_stay_exact_across_rotations() {
        // Rotation resets the shard cubes and the merged state's live
        // layer; later delta refreshes must still be exact.
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(3).batch_rows(64),
        );
        for i in 0..1500 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        engine.snapshot().unwrap();
        let pane = engine.rotate_pane().unwrap();
        assert_eq!(pane.row_count(), 1500);
        // The merged cube dropped the rotated rows.
        assert_eq!(engine.snapshot().unwrap().row_count(), 0);
        for i in 1500..2100 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let after = engine.snapshot().unwrap();
        let refold = engine.snapshot_refold().unwrap();
        assert_eq!(after.row_count(), 600);
        assert_eq!(refold.row_count(), 600);
        assert_eq!(after.cell_count(), refold.cell_count());
    }

    #[test]
    fn dyn_engine_serves_runtime_backends() {
        let mut engine = DynShardedCube::new(
            SketchSpec::moments(10),
            &["region"],
            EngineConfig::with_shards(2).batch_rows(100),
        );
        for i in 0..4000u64 {
            engine
                .insert(&[["eu", "us", "ap"][(i % 3) as usize]], (i % 500) as f64)
                .unwrap();
        }
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.spec().kind(), SketchKind::Moments);
        assert_eq!(snap.row_count(), 4000);
        // The snapshot is a full DynCube: it serializes like any other.
        let restored = msketch_cube::DynCube::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored.row_count(), 4000);
        let q = snap.rollup(&snap.no_filter()).unwrap().quantile(0.5);
        let r = restored
            .rollup(&restored.no_filter())
            .unwrap()
            .quantile(0.5);
        assert_eq!(q.to_bits(), r.to_bits());
    }

    #[test]
    fn unflushed_rows_are_invisible_until_flush() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(2).batch_rows(1_000_000),
        );
        let mut side = engine.writer();
        let (dims, metric) = row(7);
        side.insert(&dims, metric).unwrap();
        assert_eq!(side.pending(), 1);
        // The engine's own snapshot flushes only its own buffer.
        let snap = engine.snapshot().unwrap();
        assert!(matches!(
            snap.rollup(&snap.no_filter()),
            Err(msketch_cube::Error::EmptyResult)
        ));
        side.flush().unwrap();
        assert_eq!(side.pending(), 0);
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.row_count(), 1);
    }

    #[test]
    fn shutdown_joins_workers_and_later_calls_error() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(3).batch_rows(8),
        );
        let mut side = engine.writer();
        for i in 0..100 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        assert!(!engine.is_shut_down());
        // Shutdown stops workers even while `side` still holds senders —
        // the leak the Drop-ordering fix exists to prevent.
        engine.shutdown().unwrap();
        assert!(engine.is_shut_down());
        // Every later engine call reports the typed ShutDown error —
        // including a second shutdown (regression: it used to succeed
        // silently) and ingest (it used to buffer, then fail at flush
        // with a misleading Disconnected).
        assert!(matches!(engine.shutdown(), Err(EngineError::ShutDown)));
        assert!(matches!(engine.snapshot(), Err(EngineError::ShutDown)));
        assert!(matches!(engine.rotate_pane(), Err(EngineError::ShutDown)));
        assert!(matches!(engine.flush(), Err(EngineError::ShutDown)));
        let (dims, metric) = row(0);
        assert!(matches!(
            engine.insert(&dims, metric),
            Err(EngineError::ShutDown)
        ));
        assert!(engine.stats().shut_down);
        // A detached writer has no engine handle to consult; its sends
        // land on dead channels and surface as Disconnected.
        side.insert(&dims, metric).unwrap(); // buffered locally
        assert!(matches!(side.flush(), Err(EngineError::Disconnected)));
    }

    #[test]
    fn checkpoint_accumulates_panes_into_full_snapshots() {
        // No WAL attached: checkpoint still retires panes into the
        // base cube and returns cumulative snapshots.
        let mut engine = DynShardedCube::new(
            SketchSpec::moments(8),
            &["region"],
            EngineConfig::with_shards(2).batch_rows(16),
        );
        assert!(!engine.wal_attached());
        for i in 0..300u64 {
            engine
                .insert(&[["eu", "us"][(i % 2) as usize]], i as f64)
                .unwrap();
        }
        let first = engine.checkpoint().unwrap();
        assert_eq!(first.row_count(), 300);
        for i in 300..500u64 {
            engine
                .insert(&[["eu", "us"][(i % 2) as usize]], i as f64)
                .unwrap();
        }
        let second = engine.checkpoint().unwrap();
        assert_eq!(second.row_count(), 500, "base accumulates both panes");
        assert_eq!(second.epoch(), 2);
        // A plain snapshot also sees the base plus (empty) live shards.
        assert_eq!(engine.snapshot().unwrap().row_count(), 500);
        // An empty checkpoint appends nothing and keeps the base.
        let third = engine.checkpoint().unwrap();
        assert_eq!(third.row_count(), 500);
    }

    #[test]
    fn stats_start_clean() {
        let engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(2),
        );
        let stats = engine.stats();
        assert_eq!(stats, EngineStats::default());
    }

    #[test]
    fn shutdown_ingests_rows_queued_ahead_of_the_marker() {
        // The shutdown marker is a FIFO barrier: rows flushed before it
        // are never dropped. Observable via snapshot-before-shutdown.
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(2).batch_rows(4),
        );
        for i in 0..50 {
            let (dims, metric) = row(i);
            engine.insert(&dims, metric).unwrap();
        }
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.row_count(), 50);
        engine.shutdown().unwrap();
    }

    #[test]
    fn writer_arity_is_checked() {
        let mut engine = ShardedCube::new(
            moments_factory(),
            &["country", "version"],
            EngineConfig::with_shards(1),
        );
        assert!(matches!(
            engine.insert(&["US"], 1.0),
            Err(EngineError::Cube(
                msketch_cube::Error::DimensionMismatch { .. }
            ))
        ));
    }

    #[test]
    fn merge_from_boxed_cells_still_works_after_snapshot() {
        // Regression guard: snapshots of dyn engines hold Box<dyn Sketch>
        // cells; merging two snapshot rollups must use the checked path.
        let mut engine = DynShardedCube::new(
            SketchSpec::moments(8),
            &["k"],
            EngineConfig::with_shards(2).batch_rows(10),
        );
        for i in 0..100u64 {
            engine.insert(&["a"], i as f64).unwrap();
        }
        let snap = engine.snapshot().unwrap();
        let mut a = snap.rollup(&snap.no_filter()).unwrap();
        let b = snap.rollup(&snap.no_filter()).unwrap();
        a.merge_from(&b);
        assert_eq!(a.count(), 200);
    }
}
