//! Durable pane WAL: crash recovery for the sharded engine.
//!
//! The moments sketch makes durability unusually cheap: a retired pane
//! is an immutable mergeable cube, and merging panes back together is
//! bit-exact ([`DataCube::merge_cube`](msketch_cube::DataCube::merge_cube)
//! folds cells in decoded-value order). So the log never records rows —
//! it records *panes*: each [`ShardedCube::checkpoint`] appends the
//! retired pane's [`DynCube`] wire image as one CRC-framed segment
//! ([`msketch_cube::segment`]), and recovery is nothing more than
//! "replay the valid segment prefix, merging as you go".
//!
//! ```text
//! segments.wal:  [frame epoch=1][frame epoch=2]...[frame epoch=k][torn tail?]
//!                 └──────────────── replayed ─────────────────┘ └ truncated ┘
//! ```
//!
//! Crash-consistency contract:
//!
//! * an interrupted append leaves a *torn tail* — recovery truncates it
//!   and reports the bytes dropped, it never fails the open;
//! * mid-log corruption (a bad CRC or magic before the tail) also ends
//!   the valid prefix, but is surfaced in
//!   [`RecoveryReport::tail`] so operators can distinguish "normal
//!   crash" from "disk ate my log";
//! * replay is panic-free on arbitrary bytes (property-tested in
//!   `tests/wal_recovery.rs`);
//! * a failed [`Wal::append`] degrades durability for that pane only —
//!   the pane is still merged into the in-memory base cube, so queries
//!   stay consistent and the error is reported to the caller. The
//!   handle rewinds the file to the last known-good frame boundary
//!   before accepting another append (replay stops at the first
//!   damaged frame, so appending past the damage would be silently
//!   dropped by the next recovery); if the rewind itself fails, the
//!   handle is *poisoned* and every later append returns
//!   [`WalError::Poisoned`] instead of pretending to be durable.
//!
//! Fsync cadence is the throughput knob ([`FsyncPolicy`]); the
//! `wal_bench` benchmark records the sweep in `BENCH_wal.json`.

use msketch_cube::segment::{frame_segment, unframe_segment, SegmentError};
use msketch_cube::DynCube;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How often appends reach the disk platter, from safest to fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: a completed [`checkpoint`] is
    /// durable against power loss, not just process crash.
    ///
    /// [`checkpoint`]: crate::ShardedCube::checkpoint
    Always,
    /// `fsync` once per N appends: bounds the power-loss exposure to
    /// the last N panes while amortizing the sync cost.
    EveryN(u64),
    /// Never `fsync` explicitly: appends survive process crashes (the
    /// kernel holds the pages) but not power loss. The right choice
    /// when the WAL is a warm-restart convenience, not an audit log.
    Never,
}

/// Configuration for [`Wal::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Fsync cadence; defaults to [`FsyncPolicy::Always`].
    pub fsync: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync: FsyncPolicy::Always,
        }
    }
}

/// Why WAL I/O or replay failed.
///
/// `std::io::Error` is neither `Clone` nor `PartialEq`, so I/O failures
/// carry their rendered message — [`EngineError`](crate::EngineError)
/// derives both and WAL errors must nest inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Filesystem operation failed (open, read, write, sync, truncate).
    Io(String),
    /// A log frame failed to parse; recovery ends the valid prefix at
    /// the reported offset.
    Segment(SegmentError),
    /// A frame's CRC checked out but its payload is not a decodable
    /// cube — corruption the checksum happened to miss, or a foreign
    /// file. Ends the valid prefix.
    Decode {
        /// Stream offset of the undecodable frame.
        offset: usize,
        /// The cube decoder's rendered error.
        detail: String,
    },
    /// A decoded segment does not merge with the segments before it
    /// (schema or backend mismatch — logs from different engines were
    /// mixed). Ends the valid prefix.
    Merge {
        /// Stream offset of the unmergeable frame.
        offset: usize,
        /// The cube merge's rendered error.
        detail: String,
    },
    /// The handle refuses to append: an earlier failure left damaged
    /// bytes past the last known-good frame boundary and they could
    /// not be rewound. Replay stops at the first damaged frame, so any
    /// segment appended now would be silently dropped by the next
    /// recovery — failing loudly here is what keeps that loss visible.
    /// Reopen the log ([`Wal::open`]) to truncate the damage and
    /// resume.
    Poisoned {
        /// The failure that poisoned the handle, rendered.
        detail: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::Segment(e) => write!(f, "wal frame: {e}"),
            WalError::Decode { offset, detail } => {
                write!(f, "wal segment at byte {offset} does not decode: {detail}")
            }
            WalError::Merge { offset, detail } => {
                write!(f, "wal segment at byte {offset} does not merge: {detail}")
            }
            WalError::Poisoned { detail } => {
                write!(
                    f,
                    "wal poisoned by an unrewindable append failure ({detail}); \
                     reopen the log to truncate the damage"
                )
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<SegmentError> for WalError {
    fn from(e: SegmentError) -> Self {
        WalError::Segment(e)
    }
}

fn io_err(context: &str, e: std::io::Error) -> WalError {
    WalError::Io(format!("{context}: {e}"))
}

/// What [`Wal::open`] found and did while replaying an existing log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Valid segments replayed into the recovered base cube.
    pub segments_replayed: usize,
    /// Total rows in the recovered base cube.
    pub rows_recovered: u64,
    /// Bytes of valid segment prefix kept.
    pub valid_bytes: u64,
    /// Bytes truncated off the tail (torn or corrupt).
    pub truncated_bytes: u64,
    /// Epoch of the last replayed segment (0 when none).
    pub last_epoch: u64,
    /// Why replay stopped before the end of the file, when it did:
    /// `Some(Segment(Torn ..))` is the expected shape after a crash
    /// mid-append; anything else means mid-log corruption.
    pub tail: Option<WalError>,
}

/// Lock-free append counters, shared between the WAL handle and any
/// observer (the engine's `stats()`), so reading them never waits on an
/// in-flight append or fsync.
#[derive(Debug, Default)]
pub struct WalCounters {
    segments_appended: AtomicU64,
    bytes_appended: AtomicU64,
    append_errors: AtomicU64,
}

impl WalCounters {
    /// Segments appended through the owning handle.
    pub fn segments_appended(&self) -> u64 {
        self.segments_appended.load(Ordering::Relaxed)
    }
    /// Bytes appended through the owning handle.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended.load(Ordering::Relaxed)
    }
    /// Appends that failed through the owning handle.
    pub fn append_errors(&self) -> u64 {
        self.append_errors.load(Ordering::Relaxed)
    }
}

/// An open, replayed segment log: the append handle the engine holds.
///
/// One file, `segments.wal`, inside the directory handed to
/// [`Wal::open`]; segments are framed by [`msketch_cube::segment`] and
/// appended strictly in epoch order by
/// [`ShardedCube::checkpoint`](crate::ShardedCube::checkpoint).
pub struct Wal {
    path: PathBuf,
    file: File,
    fsync: FsyncPolicy,
    appends_since_sync: u64,
    counters: Arc<WalCounters>,
    /// File length as of the last fully-written frame: the rewind
    /// target after a failed append, and the boundary replay would
    /// stop at if we crashed right now.
    committed_len: u64,
    /// Set when a failed append could not be rewound; every later
    /// append returns [`WalError::Poisoned`] until the log is
    /// reopened.
    poisoned: Option<String>,
    /// Observability hooks, attached via [`Wal::set_obs`].
    obs: Option<WalObs>,
}

/// Fsync latency recorder plus warn-event sink for append failures:
/// [`WalCounters`] say how many appends failed, events say when and
/// why, and the recorder gives `/metrics` the fsync latency
/// distribution (moment sketch, like every other recorder).
struct WalObs {
    fsync_seconds: msketch_obs::Recorder,
    events: msketch_obs::TraceSink,
}

impl Wal {
    /// File name of the segment log inside the WAL directory.
    pub const LOG_FILE: &'static str = "segments.wal";

    /// Open (creating if absent) the segment log under `dir`, replay
    /// its valid prefix into a base cube, and truncate any invalid
    /// tail.
    ///
    /// Returns the append handle, the recovered cube (`None` when the
    /// log held no segments), and a [`RecoveryReport`]. Corruption
    /// never fails the open — it shortens the valid prefix and is
    /// reported in [`RecoveryReport::tail`]. Only real I/O failures
    /// return `Err`.
    pub fn open(
        dir: &Path,
        config: WalConfig,
    ) -> Result<(Wal, Option<DynCube>, RecoveryReport), WalError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create wal dir", e))?;
        let path = dir.join(Self::LOG_FILE);
        let (stream, created) = match std::fs::read(&path) {
            Ok(bytes) => (bytes, false),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), true),
            Err(e) => return Err(io_err("read wal", e)),
        };

        let (base, report) = replay(&stream);

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open wal", e))?;
        if report.truncated_bytes > 0 {
            // Drop the torn/corrupt tail so the next append starts at a
            // frame boundary; without this, replay after the next crash
            // would stop at the old damage and lose the new segments.
            // Sync the shorter length before appending over it — an
            // unsynced truncation racing a crash could resurrect stale
            // tail bytes past a fresh frame.
            file.set_len(report.valid_bytes)
                .map_err(|e| io_err("truncate wal tail", e))?;
            file.sync_data()
                .map_err(|e| io_err("sync truncated wal", e))?;
        }
        if created {
            // A new file's *directory entry* is not durable until the
            // directory itself is synced; without this, power loss can
            // vanish the whole log even though every later sync_data
            // on the file succeeded.
            sync_dir(dir)?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek wal end", e))?;

        Ok((
            Wal {
                path,
                file,
                fsync: config.fsync,
                appends_since_sync: 0,
                counters: Arc::new(WalCounters::default()),
                committed_len: report.valid_bytes,
                poisoned: None,
                obs: None,
            },
            base,
            report,
        ))
    }

    /// Append one segment (a `DynCube` wire image) under `epoch`,
    /// syncing per the configured [`FsyncPolicy`]. Returns the frame
    /// size written.
    ///
    /// A failed append never leaves the log in a state where a *later*
    /// append would be silently dropped by replay: the file is rewound
    /// to the last fully-written frame before the error returns, and
    /// if that rewind fails the handle poisons itself — every
    /// subsequent call answers [`WalError::Poisoned`] until the log is
    /// reopened.
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> Result<u64, WalError> {
        let mut span = msketch_obs::span("engine::wal_append");
        span.field("epoch", epoch);
        if let Some(detail) = &self.poisoned {
            self.counters.append_errors.fetch_add(1, Ordering::Relaxed);
            self.warn_append_error("append refused: log poisoned");
            return Err(WalError::Poisoned {
                detail: detail.clone(),
            });
        }
        let frame = frame_segment(epoch, payload);
        // Fault injection: crash mid-append. Writing exactly half the
        // frame leaves the torn-tail shape a real crash leaves; the
        // error models the process dying before the write completed,
        // so the torn bytes stay on disk for recovery to truncate and
        // the handle poisons itself — a crashed process cannot keep
        // appending, and neither may we, or replay would silently drop
        // everything we append past the tear.
        if failpoint::fail_if("engine::wal_torn_append") {
            let half = &frame[..frame.len() / 2];
            self.file
                .write_all(half)
                .and_then(|()| self.file.sync_data())
                .map_err(|e| io_err("append wal (injected torn write)", e))?;
            self.counters.append_errors.fetch_add(1, Ordering::Relaxed);
            self.poisoned = Some("injected torn append".to_string());
            self.warn_append_error("injected torn append");
            return Err(WalError::Io("injected torn append".to_string()));
        }
        // Fault injection: a *transient* partial write (ENOSPC halfway
        // through the frame, then the error returns to a live caller).
        // Unlike the torn-append crash model above, the handle survives
        // and must rewind so the next append lands on a frame boundary.
        let outcome = if failpoint::fail_if("engine::wal_partial_append") {
            self.file
                .write_all(&frame[..frame.len() / 2])
                .map_err(|e| io_err("append wal (injected partial write)", e))
                .and(Err(WalError::Io("injected partial append".to_string())))
        } else {
            self.write_frame(&frame)
        };
        if let Err(e) = outcome {
            self.counters.append_errors.fetch_add(1, Ordering::Relaxed);
            // The frame may be partially on disk. Replay stops at the
            // first damaged frame, so anything appended after it would
            // be silently truncated by the next recovery. Rewind to
            // the last known-good boundary; if even that fails, refuse
            // all further appends rather than lose them silently.
            if let Err(rewind) = self.rewind_to_committed() {
                self.poisoned = Some(format!("{e}; rewind failed: {rewind}"));
            }
            self.warn_append_error(&e.to_string());
            return Err(e);
        }
        self.counters
            .segments_appended
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_appended
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.committed_len += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Truncate the file back to the last fully-written frame and
    /// reposition the cursor there, discarding any partial frame a
    /// failed append left behind.
    fn rewind_to_committed(&mut self) -> Result<(), WalError> {
        self.file
            .set_len(self.committed_len)
            .map_err(|e| io_err("rewind wal to last good frame", e))?;
        self.file
            .seek(SeekFrom::Start(self.committed_len))
            .map_err(|e| io_err("seek wal to last good frame", e))?;
        Ok(())
    }

    fn write_frame(&mut self, frame: &[u8]) -> Result<(), WalError> {
        self.file
            .write_all(frame)
            .map_err(|e| io_err("append wal", e))?;
        self.appends_since_sync += 1;
        let due = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if due {
            // Span + recorder cover the injected stall too, so a slow
            // fsync shows up in both the trace and the p99 series.
            let _span = msketch_obs::span("engine::wal_fsync");
            let started = std::time::Instant::now();
            // Fault injection: a slow fsync (arm with `sleep(..)`), the
            // stall the serving layer's staged-commit path must never
            // hold the engine lock across.
            failpoint::sleep_if("engine::wal_fsync");
            self.sync()?;
            if let Some(obs) = &self.obs {
                obs.fsync_seconds.observe(started.elapsed().as_secs_f64());
            }
        }
        Ok(())
    }

    /// Force buffered appends to disk regardless of policy.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data().map_err(|e| io_err("sync wal", e))?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Path of the segment log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Segments appended through this handle (excludes replayed ones).
    pub fn segments_appended(&self) -> u64 {
        self.counters.segments_appended()
    }

    /// Bytes appended through this handle (excludes replayed ones).
    pub fn bytes_appended(&self) -> u64 {
        self.counters.bytes_appended()
    }

    /// Appends that failed through this handle.
    pub fn append_errors(&self) -> u64 {
        self.counters.append_errors()
    }

    /// A shared handle to this log's append counters: observers read
    /// them lock-free while appends (and their fsyncs) are in flight.
    pub fn counters(&self) -> Arc<WalCounters> {
        Arc::clone(&self.counters)
    }

    /// Whether an unrewindable append failure has poisoned the handle
    /// (every append now returns [`WalError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Attach observability: policy-driven fsyncs record their latency
    /// into `fsync_seconds`, and every append failure emits a
    /// warn-level event through `events` at the moment the
    /// `append_errors` counter increments.
    pub fn set_obs(
        &mut self,
        fsync_seconds: msketch_obs::Recorder,
        events: msketch_obs::TraceSink,
    ) {
        self.obs = Some(WalObs {
            fsync_seconds,
            events,
        });
    }

    fn warn_append_error(&self, detail: &str) {
        if let Some(obs) = &self.obs {
            obs.events.event(
                msketch_obs::Level::Warn,
                "engine::wal_append_error",
                &[
                    ("detail", detail.to_string()),
                    (
                        "append_errors_total",
                        self.counters.append_errors().to_string(),
                    ),
                ],
            );
        }
    }
}

/// Make a directory's entries durable. A file created inside `dir` is
/// only crash-safe once the directory itself has been fsynced.
#[cfg(unix)]
fn sync_dir(dir: &Path) -> Result<(), WalError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("sync wal dir", e))
}

/// Directories cannot be opened as files off unix; the log degrades to
/// the platform's default metadata durability there.
#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> Result<(), WalError> {
    Ok(())
}

/// Replay a log byte stream: fold the longest usable segment prefix
/// into a base cube, exactly as the live engine folds retired panes
/// (empty cube, then `merge_cube` per pane in epoch order — bit-exact
/// with the never-crashed path). Panic-free on arbitrary input.
fn replay(stream: &[u8]) -> (Option<DynCube>, RecoveryReport) {
    let mut report = RecoveryReport::default();
    let mut base: Option<DynCube> = None;
    let mut offset = 0usize;
    loop {
        match unframe_segment(stream, offset) {
            Ok(None) => break,
            Err(e) => {
                report.tail = Some(WalError::Segment(e));
                break;
            }
            Ok(Some(seg)) => {
                let pane = match DynCube::from_bytes(seg.payload) {
                    Ok(pane) => pane,
                    Err(e) => {
                        report.tail = Some(WalError::Decode {
                            offset,
                            detail: e.to_string(),
                        });
                        break;
                    }
                };
                // Same fold the live checkpoint path performs: create
                // the base empty on the first pane, then merge. Merge
                // failure means mixed logs; the prefix before this
                // frame is still usable.
                let dst = base.get_or_insert_with(|| {
                    let names: Vec<&str> = pane.dim_names().iter().map(String::as_str).collect();
                    DynCube::from_spec(pane.spec().clone(), &names)
                });
                if let Err(e) = dst.merge_cube(&pane) {
                    report.tail = Some(WalError::Merge {
                        offset,
                        detail: e.to_string(),
                    });
                    break;
                }
                report.segments_replayed += 1;
                report.last_epoch = report.last_epoch.max(seg.epoch);
                offset += seg.frame_len;
            }
        }
    }
    report.valid_bytes = offset as u64;
    report.truncated_bytes = (stream.len() - offset) as u64;
    report.rows_recovered = base.as_ref().map_or(0, |b| b.row_count());
    if report.segments_replayed == 0 {
        base = None;
    }
    (base, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msketch_sketches::SketchSpec;

    /// Failpoints are process-global; tests that arm one serialize so
    /// a neighbor's `teardown()` can't disarm a site mid-test.
    static FAILPOINT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn pane(rows: std::ops::Range<u64>) -> DynCube {
        let mut cube = DynCube::from_spec(SketchSpec::moments(8), &["region"]);
        for i in rows {
            cube.insert(&[["eu", "us"][(i % 2) as usize]], i as f64)
                .unwrap();
        }
        cube
    }

    #[test]
    fn fresh_dir_opens_empty() {
        let dir = std::env::temp_dir().join("msketch-wal-test-fresh");
        let _ = std::fs::remove_dir_all(&dir);
        let (wal, base, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(base.is_none());
        assert_eq!(report, RecoveryReport::default());
        assert!(wal.path().ends_with(Wal::LOG_FILE));
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_reopen_replays_merged_panes() {
        let dir = std::env::temp_dir().join("msketch-wal-test-replay");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut wal, _, _) = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.append(1, &pane(0..100).to_bytes()).unwrap();
            wal.append(2, &pane(100..250).to_bytes()).unwrap();
            assert_eq!(wal.segments_appended(), 2);
        }
        let (_, base, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.segments_replayed, 2);
        assert_eq!(report.last_epoch, 2);
        assert_eq!(report.rows_recovered, 250);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.tail, None);
        let base = base.unwrap();
        assert_eq!(base.row_count(), 250);
        // Bit-exact with merging the panes directly.
        let mut direct = pane(0..100);
        direct.merge_cube(&pane(100..250)).unwrap();
        let a = base.rollup(&base.no_filter()).unwrap().quantile(0.5);
        let b = direct.rollup(&direct.no_filter()).unwrap().quantile(0.5);
        assert_eq!(a.to_bits(), b.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let _guard = FAILPOINT_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join("msketch-wal-test-torn");
        let _ = std::fs::remove_dir_all(&dir);
        let full_len;
        {
            let (mut wal, _, _) = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.append(1, &pane(0..50).to_bytes()).unwrap();
            full_len = wal.bytes_appended();
            // Simulate a crash mid-second-append: write half a frame.
            failpoint::cfg("engine::wal_torn_append", "1*return").unwrap();
            let err = wal.append(2, &pane(50..80).to_bytes()).unwrap_err();
            assert!(matches!(err, WalError::Io(_)));
            assert_eq!(wal.append_errors(), 1);
            // The tear models a crash, so the handle is poisoned: an
            // append past the torn bytes would be silently dropped by
            // the next replay, and the handle refuses to let that
            // loss be silent.
            assert!(wal.is_poisoned());
            assert!(matches!(
                wal.append(3, &pane(80..90).to_bytes()),
                Err(WalError::Poisoned { .. })
            ));
            assert_eq!(wal.append_errors(), 2);
        }
        failpoint::teardown();
        let (mut wal, base, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.segments_replayed, 1);
        assert_eq!(report.rows_recovered, 50);
        assert_eq!(report.valid_bytes, full_len);
        assert!(report.truncated_bytes > 0);
        assert!(matches!(
            report.tail,
            Some(WalError::Segment(SegmentError::Torn { .. }))
        ));
        assert_eq!(base.unwrap().row_count(), 50);
        // The tail was truncated: appending now works and a third open
        // sees both segments.
        wal.append(2, &pane(50..80).to_bytes()).unwrap();
        drop(wal);
        let (_, base, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.segments_replayed, 2);
        assert_eq!(base.unwrap().row_count(), 80);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_rewinds_so_later_segments_survive_replay() {
        let _guard = FAILPOINT_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join("msketch-wal-test-rewind");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut wal, _, _) = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.append(1, &pane(0..50).to_bytes()).unwrap();
            // A transient partial write (ENOSPC mid-frame, caller
            // survives): the error surfaces and the file rewinds to
            // the last good frame boundary...
            failpoint::cfg("engine::wal_partial_append", "1*return").unwrap();
            let err = wal.append(2, &pane(50..80).to_bytes()).unwrap_err();
            failpoint::remove("engine::wal_partial_append");
            assert!(matches!(err, WalError::Io(_)));
            assert_eq!(wal.append_errors(), 1);
            assert!(!wal.is_poisoned());
            // ...so the retry and every later append stay replayable
            // instead of being silently truncated behind the damage.
            wal.append(2, &pane(50..80).to_bytes()).unwrap();
            wal.append(3, &pane(80..100).to_bytes()).unwrap();
            assert_eq!(wal.segments_appended(), 3);
        }
        let (_, base, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.segments_replayed, 3);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.tail, None);
        assert_eq!(base.unwrap().row_count(), 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_ends_the_prefix_and_reports() {
        let dir = std::env::temp_dir().join("msketch-wal-test-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let first_len;
        {
            let (mut wal, _, _) = Wal::open(&dir, WalConfig::default()).unwrap();
            first_len = wal.append(1, &pane(0..40).to_bytes()).unwrap();
            wal.append(2, &pane(40..90).to_bytes()).unwrap();
        }
        // Flip a byte inside the second frame's payload.
        let path = dir.join(Wal::LOG_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = first_len as usize + 30;
        bytes[victim] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, base, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.segments_replayed, 1);
        assert_eq!(
            report.tail,
            Some(WalError::Segment(SegmentError::BadCrc {
                offset: first_len as usize
            }))
        );
        assert_eq!(base.unwrap().row_count(), 40);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), first_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_cadence_policies_all_land_appends() {
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::EveryN(4),
            FsyncPolicy::Never,
        ] {
            let dir = std::env::temp_dir().join(format!("msketch-wal-test-sync-{fsync:?}"));
            let _ = std::fs::remove_dir_all(&dir);
            {
                let (mut wal, _, _) = Wal::open(&dir, WalConfig { fsync }).unwrap();
                for epoch in 1..=6u64 {
                    let lo = (epoch - 1) * 10;
                    wal.append(epoch, &pane(lo..lo + 10).to_bytes()).unwrap();
                }
            }
            let (_, base, report) = Wal::open(&dir, WalConfig::default()).unwrap();
            assert_eq!(report.segments_replayed, 6, "{fsync:?}");
            assert_eq!(base.unwrap().row_count(), 60, "{fsync:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn foreign_file_replays_as_empty_with_bad_magic_tail() {
        let dir = std::env::temp_dir().join("msketch-wal-test-foreign");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(Wal::LOG_FILE), b"this is not a segment log at all").unwrap();
        let (_, base, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(base.is_none());
        assert_eq!(report.segments_replayed, 0);
        assert!(matches!(
            report.tail,
            Some(WalError::Segment(SegmentError::BadMagic { offset: 0 }))
        ));
        assert!(report.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
