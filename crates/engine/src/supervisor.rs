//! Shard-worker supervision: panic containment, checkpoint rollback,
//! and restart accounting.
//!
//! Each shard worker wraps its batch ingestion in `catch_unwind`. A
//! panic mid-batch (a poisoned batch, a sketch-backend bug, or an armed
//! `engine::worker_panic` failpoint) cannot be allowed to leave the
//! shard cube half-mutated — a torn insert would silently skew every
//! later snapshot. Instead the worker keeps a *checkpoint*: a clone of
//! its cube taken at each epoch boundary (snapshot, delta, or rotate
//! reply). On panic it rolls the cube back to the checkpoint, counts
//! the rows discarded (everything applied since the boundary plus the
//! poisoned batch), bumps the restart counter, and keeps draining its
//! channel — the thread itself never dies, so per-sender FIFO ordering
//! and the shutdown barrier survive any number of restarts.
//!
//! The trade: a restart rewinds the shard to its last epoch boundary,
//! trading bounded, *accounted* data loss ([`EngineStats::rows_lost`])
//! for a guaranteed-consistent cube. Engines that snapshot or
//! checkpoint regularly keep the exposure window to one epoch.
//!
//! Workers also own the decode side of writer-side interning: one
//! [`WriterTable`] per `(writer, dimension)` maps each writer's dense
//! pool ids to this shard cube's dictionary ids. A batch's `news` are
//! appended to the table's string log *outside* the unwind boundary
//! (the id assignments are writer-side facts, valid regardless of what
//! happens to this batch), while the derived `dict_ids` cache is
//! rebuilt eagerly after any rollback or rotation — both revert or
//! replace the cube's dictionaries out from under the cache.

use crate::sharded::ShardMsg;
use msketch_cube::hash::{FxHashMap, FxHashSet};
use msketch_cube::{DataCube, WriterTable};
use msketch_obs::{Level, TraceSink};
use msketch_sketches::traits::SummaryFactory;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Lock-free counters shared between shard workers and the engine
/// handle; folded into [`EngineStats`] on demand.
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    pub(crate) restarts: AtomicU64,
    pub(crate) rows_lost: AtomicU64,
    pub(crate) rows_applied: AtomicU64,
    /// Warn-event sink, attached after construction via
    /// [`ShardedCube::set_obs`](crate::ShardedCube::set_obs). Counters
    /// say how many rollbacks happened; events say *when* — each
    /// restart / abandonment emits one at the moment it increments.
    /// Only exceptional paths lock this, never batch ingest.
    pub(crate) events: Mutex<Option<TraceSink>>,
}

/// A point-in-time view of the engine's health counters
/// ([`ShardedCube::stats`](crate::ShardedCube::stats)); the serving
/// layer surfaces these through `/health` and `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Times a shard worker panicked mid-batch and was rolled back to
    /// its checkpoint. Zero in a healthy engine.
    pub worker_restarts: u64,
    /// Rows discarded by rollbacks (rows applied since the last epoch
    /// boundary plus the poisoned batch itself) and by dying workers
    /// (the in-flight batch plus everything queued behind the dead
    /// receiver at exit time). `rows_applied + rows_lost` never
    /// exceeds the rows accepted by the engine.
    pub rows_lost: u64,
    /// Rows currently applied across all shard workers, net of
    /// rollbacks — rows discarded by a rollback move from here to
    /// [`rows_lost`](Self::rows_lost), they are never counted in both.
    pub rows_applied: u64,
    /// Segments appended to the WAL this process lifetime (0 when no
    /// WAL is attached).
    pub wal_segments: u64,
    /// Bytes appended to the WAL this process lifetime.
    pub wal_bytes: u64,
    /// WAL appends that failed (durability degraded, memory intact).
    pub wal_append_errors: u64,
    /// Cells folded by full-refold refreshes (`snapshot_refold`,
    /// `rotate_pane`, recovery) this process lifetime — the cost the
    /// delta path avoids.
    pub snapshot_cells_folded: u64,
    /// Delta cells applied by incremental refreshes (`snapshot`,
    /// `checkpoint`) this process lifetime; tracks cells *touched*
    /// between epochs, not cube size.
    pub delta_cells_applied: u64,
    /// Wall-clock duration of the most recent refresh (snapshot or
    /// checkpoint), in microseconds.
    pub last_refresh_micros: u64,
    /// Has the engine been shut down?
    pub shut_down: bool,
}

impl SharedStats {
    pub(crate) fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }
    pub(crate) fn rows_lost(&self) -> u64 {
        self.rows_lost.load(Ordering::Relaxed)
    }
    pub(crate) fn rows_applied(&self) -> u64 {
        self.rows_applied.load(Ordering::Relaxed)
    }
    /// Emit a warn event if a sink is attached (no-op otherwise).
    pub(crate) fn warn(&self, name: &'static str, fields: &[(&'static str, String)]) {
        let guard = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(sink) = guard.as_ref() {
            sink.event(Level::Warn, name, fields);
        }
    }
}

/// The supervised shard-worker loop. Runs on a dedicated thread owned
/// by [`ShardedCube`](crate::ShardedCube); exits when a shutdown marker
/// arrives or every sender is dropped.
pub(crate) fn worker_loop<F>(
    shard: usize,
    rx: crossbeam::channel::Receiver<ShardMsg<F>>,
    mut cube: DataCube<F>,
    factory: F,
    dim_names: Vec<String>,
    stats: Arc<SharedStats>,
) where
    F: SummaryFactory + Clone,
{
    // The rollback target: the cube as of the last epoch boundary.
    // Cloning a cube is shallow (`Arc` per cell), so checkpoints stay
    // cheap at any cube size.
    let mut checkpoint = cube.clone();
    // Cells mutated since the last delta reply — what the next delta
    // ships. Not cleared on rollback: a cell touched before a newer
    // `Snapshot` checkpoint may hold a value the merged cube hasn't
    // seen, and re-shipping an unchanged cell is idempotent anyway.
    let mut touched: FxHashSet<Vec<u32>> = FxHashSet::default();
    // Per-writer pool decode tables, one `WriterTable` per dimension.
    let mut tables: FxHashMap<u32, Vec<WriterTable>> = FxHashMap::default();
    let dims = dim_names.len();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Interned(batch) => {
                // Fault injection: a worker that vanishes without
                // unwinding (models a killed thread / broken peer).
                // Dropping the receiver surfaces as `Disconnected` at
                // the next engine call.
                if failpoint::fail_if("engine::worker_exit") {
                    abandon(shard, &rx, batch.metrics.len() as u64, &stats);
                    return;
                }
                let rows = batch.metrics.len() as u64;
                let writer_tables = tables
                    .entry(batch.writer)
                    .or_insert_with(|| vec![WriterTable::default(); dims]);
                // Record the batch's pool-id assignments before the
                // unwind boundary: they are facts about the writer's
                // pools and must survive even if this batch's insert
                // panics and rolls back.
                for (table, column) in writer_tables.iter_mut().zip(&batch.columns) {
                    table.extend_strings(&column.news);
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    // `sleep_if` panics when the site is armed with
                    // `panic` — the supervision tests' injection point —
                    // and injects latency when armed with `sleep`.
                    failpoint::sleep_if("engine::worker_panic");
                    cube.insert_interned(&batch, writer_tables, &mut touched)
                }));
                match outcome {
                    Ok(Ok(())) => {
                        stats.rows_applied.fetch_add(rows, Ordering::Relaxed);
                    }
                    // Arity was checked at the writer, so a typed error
                    // here is a pipeline bug. Exit the loop instead of
                    // panicking: dropping the receiver surfaces as
                    // `Disconnected` at the next engine call, without
                    // parking channel peers behind a dead worker.
                    Ok(Err(_)) => {
                        abandon(shard, &rx, rows, &stats);
                        return;
                    }
                    Err(_) => {
                        // Panic mid-batch: the cube may hold a torn
                        // insert. Roll back to the checkpoint and
                        // account for everything discarded — rows that
                        // had landed since the boundary plus the batch
                        // that blew up. The rolled-back rows move from
                        // rows_applied to rows_lost; counting them in
                        // both would let applied + lost exceed the
                        // rows the engine ever accepted.
                        let rolled_back = cube.row_count().saturating_sub(checkpoint.row_count());
                        cube = checkpoint.clone();
                        // The rollback reverted the cube's dictionaries;
                        // every cached dict id may now be stale or
                        // dangling. Rebuild the caches against the
                        // reverted dictionaries.
                        for writer_tables in tables.values_mut() {
                            cube.rebind_tables(writer_tables);
                        }
                        let lost = rolled_back.saturating_add(rows);
                        stats.rows_lost.fetch_add(lost, Ordering::Relaxed);
                        stats.rows_applied.fetch_sub(rolled_back, Ordering::Relaxed);
                        stats.restarts.fetch_add(1, Ordering::Relaxed);
                        stats.warn(
                            "engine::worker_restart",
                            &[
                                ("shard", shard.to_string()),
                                ("rows_lost", lost.to_string()),
                                ("restarts_total", stats.restarts().to_string()),
                            ],
                        );
                    }
                }
            }
            ShardMsg::Snapshot(reply) => {
                // Epoch boundary: refresh the rollback target, then
                // answer. The engine may already have given up on this
                // snapshot (send error elsewhere); dropping the reply
                // is fine. `touched` is deliberately kept: this reply
                // does not update the merged cube's delta state.
                checkpoint = cube.clone();
                let _ = reply.send(checkpoint.clone());
            }
            ShardMsg::Delta(reply) => {
                // Epoch boundary for the incremental path: ship only
                // the cells mutated since the last delta, then clear
                // the touched set — the merged cube now has them. The
                // rollback target catches up incrementally as well
                // (O(touched), not O(cells)), keeping the worker side
                // of the refresh barrier proportional to the delta.
                let delta = cube.build_delta(&touched);
                checkpoint.sync_checkpoint(&cube, &touched);
                touched.clear();
                let _ = reply.send(delta);
            }
            ShardMsg::Rotate(reply) => {
                let names: Vec<&str> = dim_names.iter().map(String::as_str).collect();
                let fresh = DataCube::new(factory.clone(), &names);
                let retired = std::mem::replace(&mut cube, fresh);
                // The new pane starts empty; so does its checkpoint.
                // Its dictionaries are empty too, so the decode caches
                // must re-intern every known writer string.
                checkpoint = cube.clone();
                touched.clear();
                for writer_tables in tables.values_mut() {
                    cube.rebind_tables(writer_tables);
                }
                let _ = reply.send(retired);
            }
            ShardMsg::Shutdown => return,
        }
    }
}

/// A worker is abandoning its channel (hard exit, no restart): count
/// the in-flight batch plus every batch already queued behind the
/// dying receiver into `rows_lost`, so the loss shows up in `/health`
/// and `/stats` immediately instead of staying invisible until a later
/// engine call surfaces `Disconnected`. Rows sent *after* this drain
/// are rejected at the engine's send, which has its own error path.
fn abandon<F>(
    shard: usize,
    rx: &crossbeam::channel::Receiver<ShardMsg<F>>,
    in_flight_rows: u64,
    stats: &SharedStats,
) where
    F: SummaryFactory + Clone,
{
    let mut lost = in_flight_rows;
    while let Ok(msg) = rx.try_recv() {
        if let ShardMsg::Interned(batch) = msg {
            lost = lost.saturating_add(batch.metrics.len() as u64);
        }
        // Snapshot/Delta/Rotate replies drop here; their senders see
        // the disconnect, same as when the receiver itself drops.
    }
    stats.rows_lost.fetch_add(lost, Ordering::Relaxed);
    stats.warn(
        "engine::worker_abandoned",
        &[
            ("shard", shard.to_string()),
            ("rows_lost", lost.to_string()),
        ],
    );
}
