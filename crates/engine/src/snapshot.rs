//! Epoch-stamped immutable snapshots served to readers.

use msketch_cube::DataCube;
use msketch_sketches::traits::SummaryFactory;
use std::sync::Arc;

/// An immutable merged cube produced by
/// [`ShardedCube::snapshot`](crate::ShardedCube::snapshot) (or
/// [`rotate_pane`](crate::ShardedCube::rotate_pane)), stamped with the
/// epoch at which it was taken.
///
/// Snapshots deref to [`DataCube`], so every read-side API — roll-ups,
/// group-bys, [`GroupThresholdQuery::run_cube`], MacroBase's
/// `search_cube` — works on a snapshot unchanged. No mutating cube
/// method is reachable (they all need `&mut`), so a snapshot handed to
/// readers is frozen: writers keep ingesting into the live shards
/// without ever touching it.
///
/// The cube lives behind an `Arc`: cloning a snapshot (or handing it to
/// reader threads) is a pointer bump, and the engine's double-buffered
/// merged state republishes the same allocation across delta refreshes
/// instead of cloning the full cell map.
///
/// [`GroupThresholdQuery::run_cube`]:
///     msketch_cube::GroupThresholdQuery::run_cube
#[derive(Clone)]
pub struct EngineSnapshot<F: SummaryFactory> {
    epoch: u64,
    cube: Arc<DataCube<F>>,
}

impl<F: SummaryFactory> EngineSnapshot<F> {
    pub(crate) fn new(epoch: u64, cube: DataCube<F>) -> Self {
        EngineSnapshot {
            epoch,
            cube: Arc::new(cube),
        }
    }

    pub(crate) fn new_shared(epoch: u64, cube: Arc<DataCube<F>>) -> Self {
        EngineSnapshot { epoch, cube }
    }

    /// The engine epoch at which this snapshot was taken; later
    /// snapshots of the same engine carry strictly larger epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The merged cube.
    pub fn cube(&self) -> &DataCube<F> {
        &self.cube
    }

    /// Unwrap into the merged cube (e.g. to keep ingesting into it
    /// offline, or to persist a `DynCube` snapshot). Clones only when
    /// the cube is still shared with the engine's publish buffer.
    pub fn into_cube(self) -> DataCube<F>
    where
        F: Clone,
    {
        Arc::try_unwrap(self.cube).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl<F: SummaryFactory> std::ops::Deref for EngineSnapshot<F> {
    type Target = DataCube<F>;
    fn deref(&self) -> &DataCube<F> {
        &self.cube
    }
}
