//! Epoch-stamped immutable snapshots served to readers.

use msketch_cube::DataCube;
use msketch_sketches::traits::SummaryFactory;

/// An immutable merged cube produced by
/// [`ShardedCube::snapshot`](crate::ShardedCube::snapshot) (or
/// [`rotate_pane`](crate::ShardedCube::rotate_pane)), stamped with the
/// epoch at which it was taken.
///
/// Snapshots deref to [`DataCube`], so every read-side API — roll-ups,
/// group-bys, [`GroupThresholdQuery::run_cube`], MacroBase's
/// `search_cube` — works on a snapshot unchanged. No mutating cube
/// method is reachable (they all need `&mut`), so a snapshot handed to
/// readers is frozen: writers keep ingesting into the live shards
/// without ever touching it. Wrap one in `Arc` to share across reader
/// threads.
///
/// [`GroupThresholdQuery::run_cube`]:
///     msketch_cube::GroupThresholdQuery::run_cube
#[derive(Clone)]
pub struct EngineSnapshot<F: SummaryFactory> {
    epoch: u64,
    cube: DataCube<F>,
}

impl<F: SummaryFactory> EngineSnapshot<F> {
    pub(crate) fn new(epoch: u64, cube: DataCube<F>) -> Self {
        EngineSnapshot { epoch, cube }
    }

    /// The engine epoch at which this snapshot was taken; later
    /// snapshots of the same engine carry strictly larger epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The merged cube.
    pub fn cube(&self) -> &DataCube<F> {
        &self.cube
    }

    /// Unwrap into the merged cube (e.g. to keep ingesting into it
    /// offline, or to persist a `DynCube` snapshot).
    pub fn into_cube(self) -> DataCube<F> {
        self.cube
    }
}

impl<F: SummaryFactory> std::ops::Deref for EngineSnapshot<F> {
    type Target = DataCube<F>;
    fn deref(&self) -> &DataCube<F> {
        &self.cube
    }
}
