//! Sharded concurrent ingestion engine.
//!
//! The paper's query cost model (`t_query = t_merge · n_merge + t_est`,
//! Section 3.3) presumes cubes are cheap to build and merge; this crate
//! supplies the write path that makes that true at Druid-like ingest
//! rates. Rows are routed by a stable hash of their dimension-value
//! tuple to one of N shard workers, each feeding its own
//! [`msketch_cube::DataCube`] over a bounded channel in pre-interned
//! columnar batches ([`msketch_cube::InternedBatch`] — each writer
//! handle interns dimension values into its own per-shard pools, so
//! workers decode dense ids instead of re-hashing strings per row).
//! Because the moments sketch merges
//! by bit-exact power-sum addition and each dimension tuple lands on
//! exactly one shard, folding the shard-local cubes back together
//! ([`DataCube::merge_cube`](msketch_cube::DataCube::merge_cube), with
//! dictionary id remapping) reproduces sequential ingestion *exactly* —
//! concurrency costs no accuracy.
//!
//! ```text
//!              route_hash(dims) % N
//! writer ──┬─▶ channel 0 ─▶ worker 0: DataCube (shard-local dicts)
//!  (rows   ├─▶ channel 1 ─▶ worker 1: DataCube        │ snapshot /
//!  batched │        …                …                │ rotate
//!  per     └─▶ channel N-1 ─▶ worker N-1: DataCube    ▼
//!  shard)                          merge_cube ─▶ EngineSnapshot (epoch e)
//!                                                  │ rotate_pane
//!                                                  ▼
//!                                       TurnstileWindow (sliding serving)
//! ```
//!
//! * [`ShardedCube`] — the engine: spawn workers, ingest, snapshot;
//! * [`ShardWriter`] — additional ingest handles for concurrent writers;
//! * [`EngineSnapshot`] — an epoch-stamped immutable merged cube;
//!   readers query it (it derefs to `DataCube`) while writers continue;
//! * [`SlidingEngine`] — pane rotation into
//!   [`msketch_cube::TurnstileWindow`] for sliding-window serving.

#![warn(missing_docs)]

mod delta;
mod sharded;
mod snapshot;
mod supervisor;
mod wal;
mod window;

pub use sharded::{DynShardedCube, EngineConfig, ShardWriter, ShardedCube, StagedCheckpoint};
pub use snapshot::EngineSnapshot;
pub use supervisor::EngineStats;
pub use wal::{FsyncPolicy, RecoveryReport, Wal, WalConfig, WalCounters, WalError};
pub use window::SlidingEngine;

/// Errors from the concurrent engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A cube-level operation failed (arity, schema, empty result).
    Cube(msketch_cube::Error),
    /// A shard worker terminated; the engine can no longer make
    /// progress.
    Disconnected,
    /// Pane rotation found no rows to retire into the window.
    ///
    /// No longer produced by [`SlidingEngine::rotate`] — empty panes
    /// now retire as zero-row sketches so quiet periods age data out
    /// instead of failing the rotation. Kept for callers matching on
    /// the variant.
    EmptyPane,
    /// Sliding-window serving requires moments-backed cells (turnstile
    /// updates need raw power sums); the cube's backend is different.
    NonMomentsBackend,
    /// The engine has been shut down: workers are joined and no further
    /// ingest, snapshot, or shutdown call can succeed.
    ShutDown,
    /// Durable-log I/O or replay failed (see [`WalError`]).
    Wal(WalError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Cube(e) => write!(f, "cube operation failed: {e}"),
            EngineError::Disconnected => f.write_str("a shard worker has terminated"),
            EngineError::EmptyPane => f.write_str("pane holds no rows"),
            EngineError::NonMomentsBackend => {
                f.write_str("sliding-window serving requires moments-backed cells")
            }
            EngineError::ShutDown => f.write_str("the engine has been shut down"),
            EngineError::Wal(e) => write!(f, "durable log failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<msketch_cube::Error> for EngineError {
    fn from(e: msketch_cube::Error) -> Self {
        EngineError::Cube(e)
    }
}

impl From<WalError> for EngineError {
    fn from(e: WalError) -> Self {
        EngineError::Wal(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;
