//! Seeded generators for the six evaluation datasets of Table 1, plus the
//! special-purpose workloads used in the paper's robustness appendix.
//!
//! Each generator is calibrated so its support, mean, standard deviation,
//! and skewness land near the paper's reported values (the `table01`
//! harness prints the side-by-side comparison). Exact equality is neither
//! possible nor needed — sketch accuracy depends on the distributional
//! shape (tail weight, discreteness, entropy), which these reproduce.

use crate::dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Telecom Italia internet usage: heavy-tailed, spans nine orders of
    /// magnitude (paper: mean 36.77, stddev 103.5, skew 8.6).
    Milan,
    /// UCI HEPMASS feature: near-Gaussian with mild right skew, signed
    /// values (log-moments unusable).
    Hepmass,
    /// UCI occupancy CO2: bimodal, bounded, moderately skewed.
    Occupancy,
    /// UCI online retail quantities: integers, extreme skew (460).
    Retail,
    /// UCI household power: gamma-like positive continuous.
    Power,
    /// Synthetic Exponential(λ=1).
    Exponential,
}

impl Dataset {
    /// All six datasets in the paper's column order.
    pub fn all() -> [Dataset; 6] {
        [
            Dataset::Milan,
            Dataset::Hepmass,
            Dataset::Occupancy,
            Dataset::Retail,
            Dataset::Power,
            Dataset::Exponential,
        ]
    }

    /// Name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Milan => "milan",
            Dataset::Hepmass => "hepmass",
            Dataset::Occupancy => "occupancy",
            Dataset::Retail => "retail",
            Dataset::Power => "power",
            Dataset::Exponential => "exponential",
        }
    }

    /// Default generation size: the paper's sizes scaled to laptop scale
    /// (81M → 1M etc.; occupancy and retail keep their true sizes).
    pub fn default_size(&self) -> usize {
        match self {
            Dataset::Milan => 1_000_000,
            Dataset::Hepmass => 1_000_000,
            Dataset::Occupancy => 20_000,
            Dataset::Retail => 530_000,
            Dataset::Power => 1_000_000,
            Dataset::Exponential => 1_000_000,
        }
    }

    /// Generate `n` values with a fixed seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use msketch_datasets::Dataset;
    /// let data = Dataset::Exponential.generate(10_000, 42);
    /// assert_eq!(data.len(), 10_000);
    /// // Deterministic: same seed, same data.
    /// assert_eq!(data, Dataset::Exponential.generate(10_000, 42));
    /// ```
    pub fn generate(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD5);
        match self {
            Dataset::Milan => milan(&mut rng, n),
            Dataset::Hepmass => hepmass(&mut rng, n),
            Dataset::Occupancy => occupancy(&mut rng, n),
            Dataset::Retail => retail(&mut rng, n),
            Dataset::Power => power(&mut rng, n),
            Dataset::Exponential => (0..n).map(|_| dist::exponential(&mut rng, 1.0)).collect(),
        }
    }

    /// Whether the paper's lesion study uses log moments for this dataset.
    pub fn prefers_log_moments(&self) -> bool {
        matches!(self, Dataset::Milan | Dataset::Retail | Dataset::Power)
    }
}

/// Heavy-tailed internet-usage-like data: log-normal body plus a heavier
/// log-normal tail and a sliver of near-zero measurements (the real milan
/// minimum is 2.3e-6), clamped to the paper's support.
fn milan(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let pick: f64 = rng.gen();
            let v = if pick < 0.0005 {
                // Trace readings many orders of magnitude down.
                10f64.powf(rng.gen_range(-5.64..-1.0))
            } else if pick < 0.93 {
                dist::lognormal(rng, 2.72, 1.08)
            } else {
                // Heavy-usage component: tuned so the mixture lands near
                // the paper's mean 36.8 / stddev 103 / skew 8.6.
                dist::lognormal(rng, 4.9, 0.8)
            };
            v.min(7936.0)
        })
        .collect()
}

/// Near-Gaussian signed feature with mild right skew, truncated to the
/// paper's support by resampling.
fn hepmass(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| loop {
            let pick: f64 = rng.gen();
            let v = if pick < 0.82 {
                dist::normal_with(rng, -0.24, 0.84)
            } else {
                dist::normal_with(rng, 1.18, 0.78)
            };
            if (-1.961..=4.378).contains(&v) {
                break v;
            }
        })
        .collect()
}

/// Bimodal CO2 concentrations: a tight unoccupied mode near 440 ppm and a
/// broad occupied tail, clamped to the sensor's range.
fn occupancy(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let pick: f64 = rng.gen();
            let v = if pick < 0.62 {
                dist::normal_with(rng, 455.0, 35.0)
            } else {
                500.0 + dist::gamma(rng, 1.6, 380.0)
            };
            v.clamp(412.8, 2077.0)
        })
        .collect()
}

/// Integer purchase quantities: zipf body with occasional bulk orders —
/// produces the extreme skew (hundreds) of the real data.
fn retail(rng: &mut StdRng, n: usize) -> Vec<f64> {
    let body = dist::ZipfTable::new(1.75, 1000);
    (0..n)
        .map(|_| {
            let pick: f64 = rng.gen();
            if pick < 0.9999 {
                body.sample(rng) as f64
            } else {
                // Rare bulk orders up to the paper's maximum.
                rng.gen_range(1_000..=80_995) as f64
            }
        })
        .collect()
}

/// Household power draw: gamma-like positive continuous values above a
/// measurement floor.
fn power(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| (0.076 + dist::gamma(rng, 1.18, 0.86)).min(11.12))
        .collect()
}

/// Evenly spaced discrete values on `[-1, 1]`, repeated round-robin — the
/// cardinality sweep of Figure 8.
pub fn discrete_uniform(cardinality: usize, n: usize) -> Vec<f64> {
    assert!(cardinality >= 1);
    (0..n)
        .map(|i| {
            let j = i % cardinality;
            if cardinality == 1 {
                0.0
            } else {
                -1.0 + 2.0 * j as f64 / (cardinality - 1) as f64
            }
        })
        .collect()
}

/// Gamma(shape `ks`, scale 1) samples — the skew sweep of Figure 18.
pub fn gamma_dataset(ks: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A33);
    (0..n).map(|_| dist::gamma(&mut rng, ks, 1.0)).collect()
}

/// Standard Gaussian with a `frac` fraction of outliers at
/// `N(magnitude, 0.1)` — the outlier robustness sweep of Figure 19.
pub fn gaussian_with_outliers(n: usize, frac: f64, magnitude: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0071);
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < frac {
                dist::normal_with(&mut rng, magnitude, 0.1)
            } else {
                dist::normal(&mut rng)
            }
        })
        .collect()
}

/// Plain standard Gaussian — the large synthetic dataset of Figure 20.
pub fn gaussian(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9A55);
    (0..n).map(|_| dist::normal(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moments_sketch::stats::describe;

    #[test]
    fn milan_matches_paper_bands() {
        let d = describe(&Dataset::Milan.generate(400_000, 1));
        assert!(d.min < 1e-2, "min {}", d.min);
        assert!(d.max > 2000.0 && d.max <= 7936.0, "max {}", d.max);
        assert!((25.0..55.0).contains(&d.mean), "mean {}", d.mean);
        assert!((60.0..170.0).contains(&d.stddev), "std {}", d.stddev);
        assert!((4.0..16.0).contains(&d.skew), "skew {}", d.skew);
    }

    #[test]
    fn hepmass_matches_paper_bands() {
        let d = describe(&Dataset::Hepmass.generate(400_000, 2));
        assert!(d.min >= -1.961 && d.min < -1.5);
        assert!(d.max <= 4.378);
        assert!(d.mean.abs() < 0.15, "mean {}", d.mean);
        assert!((0.85..1.15).contains(&d.stddev), "std {}", d.stddev);
        assert!((0.1..0.6).contains(&d.skew), "skew {}", d.skew);
    }

    #[test]
    fn occupancy_matches_paper_bands() {
        let d = describe(&Dataset::Occupancy.generate(20_000, 3));
        assert!(d.min >= 412.8);
        assert!(d.max <= 2077.0);
        assert!((550.0..850.0).contains(&d.mean), "mean {}", d.mean);
        assert!((200.0..420.0).contains(&d.stddev), "std {}", d.stddev);
        assert!((1.0..2.4).contains(&d.skew), "skew {}", d.skew);
    }

    #[test]
    fn retail_matches_paper_bands() {
        let data = Dataset::Retail.generate(530_000, 4);
        let d = describe(&data);
        assert!(data.iter().all(|&x| x.fract() == 0.0), "must be integers");
        assert_eq!(d.min, 1.0);
        assert!(d.max > 10_000.0);
        assert!((4.0..25.0).contains(&d.mean), "mean {}", d.mean);
        assert!(d.skew > 20.0, "skew {}", d.skew);
    }

    #[test]
    fn power_matches_paper_bands() {
        let d = describe(&Dataset::Power.generate(400_000, 5));
        assert!(d.min >= 0.076);
        assert!(d.max <= 11.12);
        assert!((0.9..1.3).contains(&d.mean), "mean {}", d.mean);
        assert!((0.8..1.3).contains(&d.stddev), "std {}", d.stddev);
        assert!((1.4..2.2).contains(&d.skew), "skew {}", d.skew);
    }

    #[test]
    fn exponential_matches_exactly() {
        let d = describe(&Dataset::Exponential.generate(400_000, 6));
        assert!((d.mean - 1.0).abs() < 0.02);
        assert!((d.stddev - 1.0).abs() < 0.02);
        assert!((d.skew - 2.0).abs() < 0.2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Milan.generate(1000, 42);
        let b = Dataset::Milan.generate(1000, 42);
        assert_eq!(a, b);
        let c = Dataset::Milan.generate(1000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn discrete_uniform_cardinality() {
        let data = discrete_uniform(5, 100);
        let mut uniq: Vec<f64> = data.clone();
        uniq.sort_by(|a, b| a.partial_cmp(b).unwrap());
        uniq.dedup();
        assert_eq!(uniq.len(), 5);
        assert_eq!(uniq[0], -1.0);
        assert_eq!(uniq[4], 1.0);
        assert_eq!(discrete_uniform(1, 10), vec![0.0; 10]);
    }

    #[test]
    fn gamma_dataset_skew_tracks_shape() {
        let high_skew = describe(&gamma_dataset(0.1, 200_000, 7));
        let low_skew = describe(&gamma_dataset(10.0, 200_000, 7));
        assert!(high_skew.skew > 4.0, "skew {}", high_skew.skew);
        assert!(low_skew.skew < 1.0, "skew {}", low_skew.skew);
    }

    #[test]
    fn outlier_injection() {
        let data = gaussian_with_outliers(100_000, 0.01, 100.0, 8);
        let big = data.iter().filter(|&&x| x > 50.0).count() as f64 / data.len() as f64;
        assert!((big - 0.01).abs() < 0.003, "outlier frac {big}");
    }
}
