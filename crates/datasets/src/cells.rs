//! Partitioning data into pre-aggregation cells.
//!
//! The paper's microbenchmarks pre-aggregate datasets into cells of 200
//! values (Section 6.2.1) — and 2000/10000 in Appendix D.3 — building one
//! summary per cell and timing the merge of all of them. Production cubes
//! have wildly variable cell sizes instead (Appendix D.4), which
//! [`variable_cells`] models with a log-normal size distribution.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Split `data` into consecutive cells of `cell_size` values (the last
/// cell may be short).
pub fn fixed_cells(data: &[f64], cell_size: usize) -> Vec<&[f64]> {
    assert!(cell_size > 0);
    data.chunks(cell_size).collect()
}

/// Split `data` into cells whose sizes follow a clamped log-normal —
/// matching the production workload's shape (min 5, heavy upper tail).
pub fn variable_cells(data: &[f64], mean_size: f64, seed: u64) -> Vec<&[f64]> {
    assert!(mean_size >= 5.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCE11);
    let sigma: f64 = 1.3;
    // E[lognormal] = exp(mu + sigma^2/2); solve mu for the target mean.
    let mu = mean_size.ln() - sigma * sigma / 2.0;
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < data.len() {
        let z: f64 = crate::dist::normal(&mut rng);
        let size = ((mu + sigma * z).exp().round() as usize).max(5);
        let end = (offset + size).min(data.len());
        out.push(&data[offset..end]);
        offset = end;
    }
    out
}

/// Deterministically spread `data` round-robin into `n_groups` groups —
/// used to synthesize group-by populations with identical distributions.
pub fn round_robin_groups(data: &[f64], n_groups: usize) -> Vec<Vec<f64>> {
    assert!(n_groups > 0);
    let mut groups = vec![Vec::with_capacity(data.len() / n_groups + 1); n_groups];
    for (i, &x) in data.iter().enumerate() {
        groups[i % n_groups].push(x);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_cells_cover_data() {
        let data: Vec<f64> = (0..1005).map(f64::from).collect();
        let cells = fixed_cells(&data, 200);
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[5].len(), 5);
        let total: usize = cells.iter().map(|c| c.len()).sum();
        assert_eq!(total, 1005);
    }

    #[test]
    fn variable_cells_have_min_five_and_heavy_tail() {
        let data: Vec<f64> = (0..200_000).map(f64::from).collect();
        let cells = variable_cells(&data, 200.0, 9);
        let total: usize = cells.iter().map(|c| c.len()).sum();
        assert_eq!(total, data.len());
        // All but possibly the final remainder cell respect the minimum.
        for c in &cells[..cells.len() - 1] {
            assert!(c.len() >= 5);
        }
        let max = cells.iter().map(|c| c.len()).max().unwrap();
        let mean = total as f64 / cells.len() as f64;
        assert!(
            max as f64 > 5.0 * mean,
            "tail not heavy: max {max} mean {mean}"
        );
    }

    #[test]
    fn round_robin_balances() {
        let data: Vec<f64> = (0..100).map(f64::from).collect();
        let groups = round_robin_groups(&data, 7);
        assert_eq!(groups.len(), 7);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }
}
