//! Distribution samplers built directly on `rand`'s uniform source.
//!
//! The sanctioned dependency list includes `rand` but not `rand_distr`,
//! so the classical samplers are implemented here: Marsaglia polar
//! normals, Marsaglia–Tsang gamma, inversion exponentials, and a
//! rejection sampler for bounded zipf variables.

use rand::Rng;

/// Standard normal via the Marsaglia polar method.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal with the given mean and standard deviation.
#[inline]
pub fn normal_with<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * normal(rng)
}

/// Log-normal: `exp(mu + sigma * Z)`.
#[inline]
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Exponential with rate `lambda`, by inversion.
#[inline]
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln() / lambda
}

/// Gamma(shape, scale) via Marsaglia & Tsang (2000), with the standard
/// `U^{1/shape}` boost for `shape < 1`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    debug_assert!(shape > 0.0 && scale > 0.0);
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>();
        return gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v * scale;
        }
    }
}

/// Exact bounded-zipf sampler on `{1, ..., max}` with exponent `a > 1`,
/// using a precomputed CDF table and inversion by binary search.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build the CDF table for `P(X = k) ∝ k^{-a}`.
    pub fn new(a: f64, max: u64) -> Self {
        assert!(a > 0.0 && max >= 1);
        let mut cdf = Vec::with_capacity(max as usize);
        let mut acc = 0.0;
        for k in 1..=max {
            acc += (k as f64).powf(-a);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        ZipfTable { cdf }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen::<f64>();
        (self.cdf.partition_point(|&c| c < u) + 1) as u64
    }
}

/// One-shot bounded zipf draw (builds no table; only for tests/tiny use).
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, a: f64, max: u64) -> u64 {
    ZipfTable::new(a, max).sample(rng)
}

/// Pareto with scale `x_m` and shape `alpha`, by inversion.
#[inline]
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_m: f64, alpha: f64) -> f64 {
    let u: f64 = rng.gen::<f64>();
    x_m / (1.0 - u).powf(1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moments_sketch::stats::describe;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample<F: FnMut(&mut StdRng) -> f64>(n: usize, mut f: F) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(12345);
        (0..n).map(|_| f(&mut rng)).collect()
    }

    #[test]
    fn normal_moments() {
        let d = describe(&sample(200_000, normal));
        assert!(d.mean.abs() < 0.01, "mean {}", d.mean);
        assert!((d.stddev - 1.0).abs() < 0.01, "std {}", d.stddev);
        assert!(d.skew.abs() < 0.05, "skew {}", d.skew);
    }

    #[test]
    fn exponential_moments() {
        let d = describe(&sample(200_000, |r| exponential(r, 1.0)));
        assert!((d.mean - 1.0).abs() < 0.02);
        assert!((d.stddev - 1.0).abs() < 0.03);
        assert!((d.skew - 2.0).abs() < 0.2, "skew {}", d.skew);
        assert!(d.min >= 0.0);
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let (shape, scale) = (3.0, 2.0);
        let d = describe(&sample(200_000, |r| gamma(r, shape, scale)));
        assert!((d.mean - shape * scale).abs() < 0.1, "mean {}", d.mean);
        assert!(
            (d.stddev - (shape.sqrt() * scale)).abs() < 0.1,
            "std {}",
            d.stddev
        );
        assert!(
            (d.skew - 2.0 / shape.sqrt()).abs() < 0.15,
            "skew {}",
            d.skew
        );
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let (shape, scale) = (0.5, 1.0);
        let d = describe(&sample(200_000, |r| gamma(r, shape, scale)));
        assert!((d.mean - 0.5).abs() < 0.02, "mean {}", d.mean);
        assert!(
            (d.stddev - (0.5f64).sqrt()).abs() < 0.05,
            "std {}",
            d.stddev
        );
    }

    #[test]
    fn lognormal_median() {
        let mut v = sample(100_001, |r| lognormal(r, 1.0, 0.8));
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn zipf_bounds_and_tail() {
        let table = ZipfTable::new(2.0, 1000);
        let vals: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(8);
            (0..100_000).map(|_| table.sample(&mut rng)).collect()
        };
        assert!(vals.iter().all(|&v| (1..=1000).contains(&v)));
        let ones = vals.iter().filter(|&&v| v == 1).count() as f64 / vals.len() as f64;
        // P(X=1) for zipf(2) on 1..1000 is 1/zeta_1000(2) ≈ 0.61.
        assert!((ones - 0.61).abs() < 0.05, "P(1) = {ones}");
    }

    #[test]
    fn pareto_minimum() {
        let d = describe(&sample(50_000, |r| pareto(r, 2.0, 3.0)));
        assert!(d.min >= 2.0);
        // Mean of Pareto(2, 3) = 3.
        assert!((d.mean - 3.0).abs() < 0.1, "mean {}", d.mean);
    }
}
