//! Synthetic datasets for the moments-sketch evaluation.
//!
//! The paper evaluates on six datasets (Table 1): Telecom Italia `milan`
//! internet usage, UCI `hepmass` / `occupancy` / `retail` / `power`, and a
//! synthetic `exponential`. The real datasets are not redistributable
//! here, so [`gen`] provides seeded generators calibrated to the paper's
//! reported support, mean, standard deviation, and skewness — the
//! distributional properties the sketch's accuracy actually depends on.
//! [`production`] synthesizes the Microsoft-style production workload of
//! Appendix D.4 (integer values, heavily variable cell sizes), [`dist`]
//! holds the underlying samplers (built on `rand`'s uniform source only),
//! and [`cells`] partitions data into pre-aggregation cells.

#![warn(missing_docs)]

pub mod cells;
pub mod dist;
pub mod gen;
pub mod production;

pub use cells::{fixed_cells, variable_cells};
pub use gen::Dataset;
pub use production::ProductionWorkload;

/// Re-export of the single-pass descriptive statistics used to validate
/// generators against Table 1.
pub use moments_sketch::stats::{describe, Describe};
