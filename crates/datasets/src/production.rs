//! Synthetic production workload modeled on the Microsoft telemetry trace
//! of Appendix D.4.
//!
//! The real trace has 165M rows of an integer-valued performance metric,
//! grouped by four dimension columns into ~400k cells with sizes from 5 to
//! 722k (mean ≈ 2380) — i.e. log-normally distributed cell sizes with a
//! very heavy tail. Values span several orders of magnitude (the paper's
//! Figure 21 CDF runs from 10^0 past 10^5). We synthesize both properties.

use crate::dist;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A production-like workload: integer metric values pre-grouped into
/// variable-size cells.
#[derive(Debug, Clone)]
pub struct ProductionWorkload {
    /// Per-cell values (integers stored as `f64`, as the sketch consumes
    /// them).
    pub cells: Vec<Vec<f64>>,
}

impl ProductionWorkload {
    /// Generate a workload with roughly `total_rows` rows spread over
    /// log-normal cell sizes with the given mean.
    pub fn generate(total_rows: usize, mean_cell: f64, seed: u64) -> Self {
        assert!(mean_cell >= 5.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAB5E);
        let sigma: f64 = 1.6; // heavy-tailed cell sizes (min 5, max ~ 300x mean)
        let mu = mean_cell.ln() - sigma * sigma / 2.0;
        let mut cells = Vec::new();
        let mut produced = 0usize;
        while produced < total_rows {
            let z = dist::normal(&mut rng);
            let size =
                ((mu + sigma * z).exp().round() as usize).clamp(5, total_rows - produced + 5);
            let cell: Vec<f64> = (0..size).map(|_| Self::sample_value(&mut rng)).collect();
            produced += cell.len();
            cells.push(cell);
        }
        ProductionWorkload { cells }
    }

    /// Integer-valued, heavy-tailed telemetry metric: a log-normal
    /// latency-like distribution rounded to integers, with a floor of 1.
    fn sample_value(rng: &mut StdRng) -> f64 {
        let v = dist::lognormal(rng, 3.4, 1.9);
        v.round().clamp(1.0, 2e6)
    }

    /// Total number of rows.
    pub fn total_rows(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// All values flattened (ground truth for accuracy evaluation).
    pub fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.total_rows());
        for c in &self.cells {
            out.extend_from_slice(c);
        }
        out
    }

    /// Cell size statistics `(min, max, mean)`.
    pub fn cell_stats(&self) -> (usize, usize, f64) {
        let min = self.cells.iter().map(Vec::len).min().unwrap_or(0);
        let max = self.cells.iter().map(Vec::len).max().unwrap_or(0);
        let mean = self.total_rows() as f64 / self.cells.len().max(1) as f64;
        (min, max, mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape_matches_appendix() {
        let w = ProductionWorkload::generate(500_000, 500.0, 11);
        let (min, max, mean) = w.cell_stats();
        assert!(min >= 5, "min {min}");
        assert!(max as f64 > 10.0 * mean, "max {max} mean {mean}");
        assert!((mean - 500.0).abs() < 250.0, "mean {mean}");
        assert!(w.total_rows() >= 500_000);
    }

    #[test]
    fn values_are_positive_integers() {
        let w = ProductionWorkload::generate(50_000, 100.0, 3);
        for cell in &w.cells {
            for &v in cell {
                assert!(v >= 1.0);
                assert_eq!(v.fract(), 0.0);
            }
        }
    }

    #[test]
    fn values_span_orders_of_magnitude() {
        let flat = ProductionWorkload::generate(200_000, 200.0, 5).flatten();
        let d = moments_sketch::stats::describe(&flat);
        assert!(d.min <= 2.0);
        assert!(d.max >= 1e4, "max {}", d.max);
    }

    #[test]
    fn deterministic() {
        let a = ProductionWorkload::generate(10_000, 50.0, 77);
        let b = ProductionWorkload::generate(10_000, 50.0, 77);
        assert_eq!(a.cells, b.cells);
    }
}
