//! Moment-shift arithmetic and floating-point stability rules
//! (Section 4.3.2 and Appendices B–C of the paper).
//!
//! Both the maximum-entropy solver and the theoretical error bounds work
//! with moments of data shifted and scaled onto `[-1, 1]`. The shift is
//! performed with binomial expansions of the raw power sums, which is the
//! primary source of floating-point precision loss in the pipeline; this
//! module also implements the paper's closed-form bound on the highest
//! usable moment order (Equation 21).

use numerics::chebyshev;
use numerics::special::binomial_row;

/// A linear map between a data interval `[a, b]` and `[-1, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledDomain {
    /// Interval midpoint `(a + b) / 2`.
    pub center: f64,
    /// Interval half-width `(b - a) / 2`.
    pub radius: f64,
}

impl ScaledDomain {
    /// Domain for the interval `[a, b]` (requires `a <= b`).
    pub fn from_range(a: f64, b: f64) -> Self {
        debug_assert!(a <= b);
        ScaledDomain {
            center: 0.5 * (a + b),
            radius: 0.5 * (b - a),
        }
    }

    /// Map a data value into `[-1, 1]`.
    #[inline]
    pub fn scale(&self, x: f64) -> f64 {
        if self.radius == 0.0 {
            0.0
        } else {
            (x - self.center) / self.radius
        }
    }

    /// Map a scaled value back to the data interval.
    #[inline]
    pub fn unscale(&self, u: f64) -> f64 {
        self.center + self.radius * u
    }

    /// The offset `c` of the scaled data: after scaling by `radius`, the
    /// data lies in `[c - 1, c + 1]` with `c = center / radius`. This is
    /// the `c` of the paper's stability analysis (Appendix B).
    #[inline]
    pub fn offset(&self) -> f64 {
        if self.radius == 0.0 {
            0.0
        } else {
            self.center / self.radius
        }
    }

    /// True when the interval has zero width (point-mass data).
    #[inline]
    pub fn degenerate(&self) -> bool {
        self.radius <= 0.0
    }
}

/// Moments of the shifted/scaled variable `u = (x - center) / radius`
/// computed from raw moments `μ_i = E[x^i]` by binomial expansion:
///
/// `E[u^j] = r^{-j} Σ_i C(j, i) (-c)^{j-i} μ_i`.
///
/// Returns `E[u^0..=u^k]` where `k = raw.len() - 1`.
pub fn shifted_moments(raw: &[f64], dom: &ScaledDomain) -> Vec<f64> {
    let k = raw.len() - 1;
    let mut out = Vec::with_capacity(k + 1);
    if dom.degenerate() {
        // Point mass at the center: u == 0, so E[u^0] = 1 and the rest 0.
        out.push(1.0);
        out.extend(std::iter::repeat_n(0.0, k));
        return out;
    }
    let c = dom.center;
    let r_inv = 1.0 / dom.radius;
    #[allow(clippy::needless_range_loop)] // j is the moment order, not just an index
    for j in 0..=k {
        let row = binomial_row(j);
        let mut acc = 0.0;
        // Accumulate smallest-to-largest binomial weight for stability.
        for (i, &b) in row.iter().enumerate() {
            let sign_pow = (-c).powi((j - i) as i32);
            acc += b * sign_pow * raw[i];
        }
        out.push(acc * r_inv.powi(j as i32));
    }
    out
}

/// Chebyshev moments `E[T_n(u)]` from monomial moments `E[u^j]`.
pub fn cheb_moments_from_mono(mono: &[f64]) -> Vec<f64> {
    let k = mono.len() - 1;
    let table = chebyshev::t_coefficient_table(k);
    table
        .iter()
        .map(|row| row.iter().zip(mono).map(|(&t, &m)| t * m).sum())
        .collect()
}

/// The paper's bound (Equation 21, Appendix B) on the highest moment order
/// that remains numerically useful after shifting data centered at offset
/// `c` (in scaled units) onto `[-1, 1]` under double precision:
///
/// `k <= 13.35 / (0.78 + log10(|c| + 1))`.
///
/// Data centered at zero supports k ≈ 17; in practice the paper caps the
/// sketch at `k < 16`.
pub fn max_stable_k(c: f64) -> usize {
    let k = 13.35 / (0.78 + (c.abs() + 1.0).log10());
    k.floor().max(2.0) as usize
}

/// Absolute-error bound on the `k`-th shifted moment given relative error
/// `eps_s` in the raw power sums (Appendix B): `2^k (|c| + 1)^k eps_s`.
pub fn shifted_moment_error_bound(k: usize, c: f64, eps_s: f64) -> f64 {
    (2.0 * (c.abs() + 1.0)).powi(k as i32) * eps_s
}

/// Summary statistics (mean, population stddev, skewness) from a slice;
/// used to validate dataset generators against Table 1 of the paper.
#[derive(Debug, Clone, Copy)]
pub struct Describe {
    /// Number of values.
    pub n: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Skewness (third standardized moment).
    pub skew: f64,
}

/// Compute [`Describe`] for a data slice in a single pass of power sums.
pub fn describe(data: &[f64]) -> Describe {
    let n = data.len();
    assert!(n > 0);
    let (mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64);
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in data {
        s1 += x;
        s2 += x * x;
        s3 += x * x * x;
        min = min.min(x);
        max = max.max(x);
    }
    let nf = n as f64;
    let mean = s1 / nf;
    let var = (s2 / nf - mean * mean).max(0.0);
    let stddev = var.sqrt();
    let m3 = s3 / nf - 3.0 * mean * var - mean * mean * mean;
    let skew = if stddev > 0.0 {
        m3 / var.powf(1.5)
    } else {
        0.0
    };
    Describe {
        n,
        min,
        max,
        mean,
        stddev,
        skew,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_domain_roundtrip() {
        let d = ScaledDomain::from_range(3.0, 7.0);
        assert_eq!(d.scale(3.0), -1.0);
        assert_eq!(d.scale(7.0), 1.0);
        assert_eq!(d.scale(5.0), 0.0);
        assert!((d.unscale(d.scale(4.2)) - 4.2).abs() < 1e-12);
        assert!((d.offset() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_domain() {
        let d = ScaledDomain::from_range(2.0, 2.0);
        assert!(d.degenerate());
        assert_eq!(d.scale(2.0), 0.0);
    }

    #[test]
    fn shifted_moments_match_direct_computation() {
        let data = [1.0, 2.0, 3.5, 7.0, 4.25];
        let k = 6;
        let n = data.len() as f64;
        let raw: Vec<f64> = (0..=k)
            .map(|j| data.iter().map(|&x: &f64| x.powi(j as i32)).sum::<f64>() / n)
            .collect();
        let dom = ScaledDomain::from_range(1.0, 7.0);
        let shifted = shifted_moments(&raw, &dom);
        #[allow(clippy::needless_range_loop)] // index doubles as the moment order
        for j in 0..=k {
            let direct: f64 = data
                .iter()
                .map(|&x| dom.scale(x).powi(j as i32))
                .sum::<f64>()
                / n;
            assert!(
                (shifted[j] - direct).abs() < 1e-10,
                "j={j}: {} vs {direct}",
                shifted[j]
            );
        }
    }

    #[test]
    fn cheb_moments_match_direct_computation() {
        let data = [0.1, 0.9, 0.4, 0.77, 0.23];
        let n = data.len() as f64;
        let dom = ScaledDomain::from_range(0.1, 0.9);
        let k = 5;
        let raw: Vec<f64> = (0..=k)
            .map(|j| data.iter().map(|&x: &f64| x.powi(j as i32)).sum::<f64>() / n)
            .collect();
        let mono = shifted_moments(&raw, &dom);
        let cheb = cheb_moments_from_mono(&mono);
        #[allow(clippy::needless_range_loop)] // index doubles as the moment order
        for t in 0..=k {
            let direct: f64 = data
                .iter()
                .map(|&x| chebyshev::t_eval(t, dom.scale(x)))
                .sum::<f64>()
                / n;
            assert!(
                (cheb[t] - direct).abs() < 1e-10,
                "T_{t}: {} vs {direct}",
                cheb[t]
            );
        }
    }

    #[test]
    fn stable_k_formula() {
        // Paper: data centered at 0 supports at least 17 stable moments.
        assert!(max_stable_k(0.0) >= 17);
        // c = 2 (range [xmin, 3 xmin]): at least 10 stable moments.
        assert!(max_stable_k(2.0) >= 10);
        // Monotone decreasing in |c|.
        assert!(max_stable_k(10.0) <= max_stable_k(2.0));
        assert_eq!(max_stable_k(5.0), max_stable_k(-5.0));
    }

    #[test]
    fn describe_matches_known_values() {
        let d = describe(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(d.n, 8);
        assert_eq!(d.mean, 5.0);
        assert!((d.stddev - 2.0).abs() < 1e-12);
        assert_eq!(d.min, 2.0);
        assert_eq!(d.max, 9.0);
        // Symmetric-ish data: small skew.
        assert!(d.skew.abs() < 1.0);
    }

    #[test]
    fn describe_exponential_skew() {
        // Exponential(1) has skewness 2; a deterministic quantile grid
        // approximates it.
        let data: Vec<f64> = (1..10_000)
            .map(|i| -(1.0 - i as f64 / 10_000.0f64).ln())
            .collect();
        let d = describe(&data);
        assert!((d.mean - 1.0).abs() < 0.01);
        assert!((d.skew - 2.0).abs() < 0.15, "skew {}", d.skew);
    }
}
