//! The `bfgs` lesion estimator: first-order L-BFGS on the continuous
//! maximum-entropy objective.
//!
//! Uses the same Chebyshev-approximation machinery as the optimized solver
//! to evaluate values and gradients, but no Hessian — per Section 4.3 of
//! the paper, the Hessian is nearly free once the gradient integrations
//! are done, so the second-order method needs far fewer (comparably
//! priced) iterations and wins overall. This estimator quantifies that
//! gap.

use super::QuantileEstimator;
use crate::estimators::naive_newton::forced_basis;
use crate::solver::basis::PrimaryDomain;
use crate::solver::maxent::MaxEntObjective;
use crate::{Error, MomentsSketch, Result};
use numerics::chebyshev;
use numerics::lbfgs::{lbfgs_minimize, GradObjective, LbfgsOptions};
use numerics::roots::{brent, BrentOptions};

/// L-BFGS on the continuous max-ent objective.
#[derive(Debug, Clone, Copy)]
pub struct BfgsEstimator {
    /// Standard moments to use.
    pub k1: usize,
    /// Log moments to use.
    pub k2: usize,
}

impl Default for BfgsEstimator {
    fn default() -> Self {
        BfgsEstimator { k1: 10, k2: 0 }
    }
}

struct FirstOrder {
    inner: MaxEntObjective,
}

impl GradObjective for FirstOrder {
    fn dim(&self) -> usize {
        numerics::optimize::NewtonObjective::dim(&self.inner)
    }
    fn eval(&mut self, theta: &[f64], grad: &mut [f64]) -> f64 {
        self.inner.eval_value_grad(theta, grad)
    }
}

impl QuantileEstimator for BfgsEstimator {
    fn name(&self) -> &'static str {
        "bfgs"
    }

    fn estimate(&self, sketch: &MomentsSketch, phis: &[f64]) -> Result<Vec<f64>> {
        if sketch.is_empty() {
            return Err(Error::EmptySketch);
        }
        if sketch.min() >= sketch.max() {
            return Ok(vec![sketch.min(); phis.len()]);
        }
        let basis = forced_basis(sketch, self.k1, self.k2)?;
        let n_nodes = if basis.k1 > 0 && basis.k2 > 0 {
            128
        } else {
            64
        };
        let mut obj = FirstOrder {
            inner: MaxEntObjective::new(&basis, n_nodes),
        };
        let mut theta0 = vec![0.0; basis.dim()];
        theta0[0] = (0.5f64).ln();
        let res = lbfgs_minimize(
            &mut obj,
            &theta0,
            LbfgsOptions {
                // L-BFGS struggles to polish the last digit on stiff
                // log-basis problems; 1e-7 moment residuals are far below
                // quantile-level significance.
                grad_tol: 1e-7,
                max_iter: 2000,
                ..Default::default()
            },
        )
        .map_err(|e| Error::SolverFailed {
            reason: format!("bfgs: {e}"),
        })?;
        // CDF inversion exactly as in the optimized solver.
        let node_f = obj.inner.density_at_nodes(&res.theta);
        let pdf = chebyshev::interpolate_values(&node_f);
        let cdf = crate::solver::monotone_cdf_samples(&pdf, 1024);
        let norm = *cdf.last().unwrap();
        if !(norm.is_finite() && norm > 0.0) {
            return Err(Error::SolverFailed {
                reason: "bfgs produced non-normalizable density".into(),
            });
        }
        phis.iter()
            .map(|&phi| {
                if !(phi > 0.0 && phi < 1.0) {
                    return Err(Error::InvalidQuantile(phi));
                }
                let u = brent(
                    |u| crate::solver::sample_cdf(&cdf, u) - phi * norm,
                    -1.0,
                    1.0,
                    BrentOptions::default(),
                )
                .map_err(|e| Error::SolverFailed {
                    reason: format!("bfgs CDF inversion: {e}"),
                })?;
                let x = match basis.primary {
                    PrimaryDomain::Standard => basis.std_dom.unscale(u),
                    PrimaryDomain::Log => basis.log_dom.as_ref().unwrap().unscale(u).exp(),
                };
                Ok(x.clamp(sketch.min(), sketch.max()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::test_support::*;
    use crate::estimators::OptEstimator;
    use crate::SolverConfig;

    #[test]
    fn agrees_with_newton_solution() {
        let data = normal_grid(20_000);
        let s = MomentsSketch::from_data(10, &data);
        let ps = phis21();
        let bfgs = BfgsEstimator { k1: 10, k2: 0 }.estimate(&s, &ps).unwrap();
        let opt = OptEstimator {
            config: SolverConfig {
                k1: Some(10),
                k2: Some(0),
                ..Default::default()
            },
        }
        .estimate(&s, &ps)
        .unwrap();
        for (a, b) in bfgs.iter().zip(&opt) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn log_configuration_on_heavy_tail() {
        let data = lognormal_grid(20_000, 1.5);
        let s = MomentsSketch::from_data(10, &data);
        let ps = phis21();
        let qs = BfgsEstimator { k1: 0, k2: 10 }.estimate(&s, &ps).unwrap();
        let err = avg_error(&data, &qs, &ps);
        assert!(err < 0.01, "err {err}");
    }

    #[test]
    fn point_mass_short_circuits() {
        let s = MomentsSketch::from_data(4, &[7.0, 7.0, 7.0]);
        let qs = BfgsEstimator::default().estimate(&s, &[0.9]).unwrap();
        assert_eq!(qs[0], 7.0);
    }
}
