//! The `cvx-min` lesion estimator: discretize the domain and solve a
//! linear program for the density with *minimal maximum mass* subject to
//! the moment constraints.
//!
//! The reference implementation handed this to the ECOS cone solver; we
//! use the dense two-phase simplex from the numerics crate. Moment
//! equalities carry symmetric penalty slacks so that tiny discretization
//! infeasibilities cannot make the program infeasible.

use super::{quantiles_from_masses, scaled_setup, uniform_grid, MomentSource, QuantileEstimator};
use crate::{Error, MomentsSketch, Result};
use numerics::simplex::{solve as lp_solve, StandardLp};

/// Minimax-density LP estimator.
#[derive(Debug, Clone, Copy)]
pub struct CvxMinEstimator {
    /// Which moment set to use.
    pub source: MomentSource,
    /// Discretization points (the paper uses 1000; smaller grids trade
    /// accuracy for LP solve time).
    pub grid: usize,
}

impl Default for CvxMinEstimator {
    fn default() -> Self {
        CvxMinEstimator {
            source: MomentSource::Standard,
            grid: 128,
        }
    }
}

impl QuantileEstimator for CvxMinEstimator {
    fn name(&self) -> &'static str {
        "cvx-min"
    }

    fn estimate(&self, sketch: &MomentsSketch, phis: &[f64]) -> Result<Vec<f64>> {
        let (dom, mono, is_log) = scaled_setup(sketch, self.source)?;
        let n = self.grid.max(8);
        let grid = uniform_grid(n);
        let k = mono.len() - 1;
        // Variables: [p_0..p_{n-1}, t, s_0..s_{n-1}, sp_0..sp_k, sm_0..sm_k]
        //   p: point masses, t: max-mass bound, s: cap slacks,
        //   sp/sm: signed moment-violation slacks (penalized).
        let n_vars = n + 1 + n + 2 * (k + 1);
        let t_col = n;
        let s0 = n + 1;
        let sp0 = s0 + n;
        let sm0 = sp0 + (k + 1);
        let mut a = Vec::with_capacity((k + 1) + n);
        let mut b = Vec::with_capacity((k + 1) + n);
        // Moment rows: Σ_i p_i u_i^j + sp_j - sm_j = m_j  (j = 0 is the
        // normalization Σ p = 1).
        for j in 0..=k {
            let mut row = vec![0.0; n_vars];
            for (i, &u) in grid.iter().enumerate() {
                row[i] = u.powi(j as i32);
            }
            row[sp0 + j] = 1.0;
            row[sm0 + j] = -1.0;
            a.push(row);
            b.push(mono[j]);
        }
        // Cap rows: p_i - t + s_i = 0.
        for i in 0..n {
            let mut row = vec![0.0; n_vars];
            row[i] = 1.0;
            row[t_col] = -1.0;
            row[s0 + i] = 1.0;
            a.push(row);
            b.push(0.0);
        }
        // Objective: minimize t + M * Σ (sp + sm).
        let penalty = 1e4;
        let mut c = vec![0.0; n_vars];
        c[t_col] = 1.0;
        for j in 0..=k {
            c[sp0 + j] = penalty;
            c[sm0 + j] = penalty;
        }
        let sol = lp_solve(&StandardLp { a, b, c }).map_err(|e| Error::SolverFailed {
            reason: format!("cvx-min LP: {e}"),
        })?;
        quantiles_from_masses(&grid, &sol.x[..n], phis, &dom, is_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::test_support::*;

    #[test]
    fn recovers_uniform_distribution() {
        // For uniform data the minimax density IS the uniform density.
        let data: Vec<f64> = (0..20_000).map(|i| i as f64 / 19_999.0).collect();
        let s = MomentsSketch::from_data(8, &data);
        let ps = phis21();
        let qs = CvxMinEstimator::default().estimate(&s, &ps).unwrap();
        let err = avg_error(&data, &qs, &ps);
        assert!(err < 0.02, "err {err}");
    }

    #[test]
    fn respects_moment_constraints_approximately() {
        let data = normal_grid(20_000);
        let s = MomentsSketch::from_data(8, &data);
        let ps = vec![0.5];
        let qs = CvxMinEstimator::default().estimate(&s, &ps).unwrap();
        // Median of a symmetric distribution near 0.
        assert!(qs[0].abs() < 0.15, "median {}", qs[0]);
    }

    #[test]
    fn log_source_long_tail() {
        let data = lognormal_grid(20_000, 1.5);
        let s = MomentsSketch::from_data(8, &data);
        let ps = phis21();
        let qs = CvxMinEstimator {
            source: MomentSource::Log,
            grid: 128,
        }
        .estimate(&s, &ps)
        .unwrap();
        let err = avg_error(&data, &qs, &ps);
        assert!(err < 0.1, "err {err}");
    }
}
