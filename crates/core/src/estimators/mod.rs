//! Alternative moment-based quantile estimators — the lesion study of
//! Section 6.3 (Figure 10) of the paper.
//!
//! All estimators consume the *same* moments sketch; they differ only in
//! how they turn moments into quantiles:
//!
//! | name        | idea                                                        |
//! |-------------|-------------------------------------------------------------|
//! | `gaussian`  | fit a normal (or log-normal) to mean and variance           |
//! | `mnat`      | Mnatsakanov's closed-form discrete CDF reconstruction       |
//! | `svd`       | discretize the domain, least-norm density via pseudo-inverse|
//! | `cvx-min`   | discretize, LP minimizing the max density (simplex)         |
//! | `cvx-maxent`| discretize, generic max-entropy dual Newton on the grid     |
//! | `newton`    | the continuous max-ent objective, Romberg-integrated Hessian|
//! | `bfgs`      | the continuous objective with first-order L-BFGS            |
//! | `opt`       | the full optimized solver of [`crate::solver`]              |
//!
//! Solvers that use the maximum entropy principle are substantially more
//! accurate; the optimized solver is orders of magnitude faster than the
//! discretized/naive routes — reproducing both panels of Figure 10.

mod bfgs_est;
mod cvx_maxent;
mod cvx_min;
mod gaussian;
mod mnat;
mod naive_newton;
mod svd_est;

pub use bfgs_est::BfgsEstimator;
pub use cvx_maxent::CvxMaxEntEstimator;
pub use cvx_min::CvxMinEstimator;
pub use gaussian::GaussianEstimator;
pub use mnat::MnatEstimator;
pub use naive_newton::NaiveNewtonEstimator;
pub use svd_est::SvdEstimator;

use crate::stats::ScaledDomain;
use crate::{Error, MomentsSketch, Result, SolverConfig};

/// Which moment set an estimator consumes. The paper's lesion study uses
/// only log moments on `milan` and only standard moments on `hepmass` so
/// every estimator sees identical inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MomentSource {
    /// Standard moments `E[x^i]`.
    Standard,
    /// Log moments `E[ln^i x]` (requires strictly positive data).
    Log,
}

/// A quantile estimator operating on a moments sketch.
pub trait QuantileEstimator {
    /// Short display name matching the paper's figure labels.
    fn name(&self) -> &'static str;
    /// Estimate the given `φ`-quantiles.
    fn estimate(&self, sketch: &MomentsSketch, phis: &[f64]) -> Result<Vec<f64>>;
}

/// The paper's full solver exposed through the common estimator interface
/// (the `opt` row of Figure 10).
#[derive(Debug, Clone, Default)]
pub struct OptEstimator {
    /// Solver configuration (allows forcing `k1`/`k2` for fair
    /// comparisons).
    pub config: SolverConfig,
}

impl QuantileEstimator for OptEstimator {
    fn name(&self) -> &'static str {
        "opt"
    }
    fn estimate(&self, sketch: &MomentsSketch, phis: &[f64]) -> Result<Vec<f64>> {
        crate::solver::solve(sketch, &self.config)?.quantiles(phis)
    }
}

/// Shared setup: the scaled working domain and the monomial moments of the
/// scaled variable for the chosen source.
///
/// Returns `(domain, moments, is_log)`; for `Log` the domain maps
/// `[ln xmin, ln xmax]` onto `[-1, 1]` and callers must exponentiate
/// mapped-back values.
pub(crate) fn scaled_setup(
    sketch: &MomentsSketch,
    source: MomentSource,
) -> Result<(ScaledDomain, Vec<f64>, bool)> {
    if sketch.is_empty() {
        return Err(Error::EmptySketch);
    }
    match source {
        MomentSource::Standard => {
            let dom = ScaledDomain::from_range(sketch.min(), sketch.max());
            let cap = crate::stats::max_stable_k(dom.offset()).min(sketch.k());
            let mono = crate::stats::shifted_moments(&sketch.moments()[..=cap], &dom);
            Ok((dom, mono, false))
        }
        MomentSource::Log => {
            if !sketch.log_usable() {
                return Err(Error::InvalidArgument(
                    "log moments unavailable (non-positive data)",
                ));
            }
            let dom = ScaledDomain::from_range(sketch.min().ln(), sketch.max().ln());
            let cap = crate::stats::max_stable_k(dom.offset()).min(sketch.k());
            let mono = crate::stats::shifted_moments(&sketch.log_moments()[..=cap], &dom);
            Ok((dom, mono, true))
        }
    }
}

/// Map a scaled-domain value back to data units.
#[inline]
pub(crate) fn map_back(dom: &ScaledDomain, u: f64, is_log: bool) -> f64 {
    let v = dom.unscale(u);
    if is_log {
        v.exp()
    } else {
        v
    }
}

/// Invert a discrete distribution (grid points in `[-1, 1]` with
/// non-negative masses) at the requested quantile fractions, with linear
/// interpolation between grid points.
pub(crate) fn quantiles_from_masses(
    grid: &[f64],
    masses: &[f64],
    phis: &[f64],
    dom: &ScaledDomain,
    is_log: bool,
) -> Result<Vec<f64>> {
    debug_assert_eq!(grid.len(), masses.len());
    let total: f64 = masses.iter().map(|&m| m.max(0.0)).sum();
    if !(total.is_finite() && total > 0.0) {
        return Err(Error::SolverFailed {
            reason: "estimator produced a degenerate distribution".into(),
        });
    }
    // Cumulative mass evaluated at each grid point.
    let mut cum = Vec::with_capacity(grid.len());
    let mut acc = 0.0;
    for &m in masses {
        acc += m.max(0.0) / total;
        cum.push(acc);
    }
    let mut out = Vec::with_capacity(phis.len());
    for &phi in phis {
        if !(phi > 0.0 && phi < 1.0) {
            return Err(Error::InvalidQuantile(phi));
        }
        let idx = cum.partition_point(|&c| c < phi);
        let u = if idx == 0 {
            grid[0]
        } else if idx >= grid.len() {
            grid[grid.len() - 1]
        } else {
            // Interpolate between the previous and current grid points.
            let (c0, c1) = (cum[idx - 1], cum[idx]);
            let (g0, g1) = (grid[idx - 1], grid[idx]);
            if c1 > c0 {
                g0 + (g1 - g0) * (phi - c0) / (c1 - c0)
            } else {
                g1
            }
        };
        out.push(map_back(dom, u, is_log));
    }
    Ok(out)
}

/// A uniform cell-centered grid of `n` points on `[-1, 1]`.
pub(crate) fn uniform_grid(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| -1.0 + 2.0 * (i as f64 + 0.5) / n as f64)
        .collect()
}

#[cfg(test)]
pub(crate) mod test_support {

    /// Average quantile error of estimates vs the sorted dataset
    /// (Equation 1 of the paper).
    pub fn avg_error(data: &[f64], est: &[f64], phis: &[f64]) -> f64 {
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len() as f64;
        let mut total = 0.0;
        for (&q, &phi) in est.iter().zip(phis) {
            let rank = sorted.partition_point(|&x| x < q) as f64;
            total += (rank - phi * n).abs() / n;
        }
        total / phis.len() as f64
    }

    pub fn phis21() -> Vec<f64> {
        (0..21).map(|i| 0.01 + 0.049 * i as f64).collect()
    }

    /// Deterministic heavy-tailed (log-normal-grid) dataset.
    pub fn lognormal_grid(n: usize, sigma: f64) -> Vec<f64> {
        (1..n)
            .map(|i| (sigma * numerics::special::inv_norm_cdf(i as f64 / n as f64)).exp())
            .collect()
    }

    /// Deterministic standard-normal-grid dataset.
    pub fn normal_grid(n: usize) -> Vec<f64> {
        (1..n)
            .map(|i| numerics::special::inv_norm_cdf(i as f64 / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::test_support as _ts;
    use super::test_support::*;
    use super::*;

    #[test]
    fn masses_inversion_uniform() {
        let grid = uniform_grid(100);
        let masses = vec![1.0; 100];
        let dom = ScaledDomain::from_range(0.0, 1.0);
        let qs = quantiles_from_masses(&grid, &masses, &[0.25, 0.5, 0.75], &dom, false).unwrap();
        assert!((qs[0] - 0.25).abs() < 0.02);
        assert!((qs[1] - 0.5).abs() < 0.02);
        assert!((qs[2] - 0.75).abs() < 0.02);
    }

    #[test]
    fn masses_inversion_rejects_degenerate() {
        let dom = ScaledDomain::from_range(0.0, 1.0);
        assert!(quantiles_from_masses(&[0.0], &[0.0], &[0.5], &dom, false).is_err());
    }

    #[test]
    fn opt_estimator_through_trait() {
        let data = normal_grid(20_000);
        let s = MomentsSketch::from_data(10, &data);
        let est = OptEstimator::default();
        let ps = phis21();
        let qs = est.estimate(&s, &ps).unwrap();
        assert!(avg_error(&data, &qs, &ps) < 0.01);
        assert_eq!(est.name(), "opt");
    }

    #[test]
    fn scaled_setup_log_requires_positive() {
        let s = MomentsSketch::from_data(4, &[-1.0, 2.0]);
        assert!(scaled_setup(&s, MomentSource::Log).is_err());
        assert!(scaled_setup(&s, MomentSource::Standard).is_ok());
    }
}
