//! The `mnat` lesion estimator: Mnatsakanov's closed-form reconstruction
//! of a CDF from its Hausdorff moments (Mnatsakanov 2008, cited as \[58\]).
//!
//! For a variable `y` supported on `\[0, 1\]` with moments `μ_0..μ_α`, the
//! operator
//!
//! ```text
//! F_α(y) = Σ_{m=0}^{⌊αy⌋} Σ_{j=m}^{α} C(α,j) C(j,m) (-1)^{j-m} μ_j
//! ```
//!
//! converges to the CDF as `α → ∞`. With only `α = k ≈ 10` moments the
//! reconstruction is a coarse staircase — cheap but inaccurate, exactly as
//! the lesion study shows.

use super::{quantiles_from_masses, scaled_setup, MomentSource, QuantileEstimator};
use crate::stats::ScaledDomain;
use crate::{MomentsSketch, Result};
use numerics::special::binomial;

/// Mnatsakanov moment-CDF reconstruction.
#[derive(Debug, Clone, Copy)]
pub struct MnatEstimator {
    /// Which moment set to reconstruct from.
    pub source: MomentSource,
}

impl Default for MnatEstimator {
    fn default() -> Self {
        MnatEstimator {
            source: MomentSource::Standard,
        }
    }
}

/// CDF staircase levels `F_α` at `y = (m+1)/α`, `m = 0..α`, from moments
/// of a `\[0, 1\]`-supported variable.
pub(crate) fn mnat_cdf_levels(mu01: &[f64]) -> Vec<f64> {
    let alpha = mu01.len() - 1;
    // B(m) = Σ_{j=m}^{α} C(α,j) C(j,m) (-1)^{j-m} μ_j — the mass the
    // operator assigns to cell m.
    let mut levels = Vec::with_capacity(alpha + 1);
    let mut acc = 0.0;
    for m in 0..=alpha {
        let mut b = 0.0;
        #[allow(clippy::needless_range_loop)] // index doubles as the moment order
        for j in m..=alpha {
            let sign = if (j - m) % 2 == 0 { 1.0 } else { -1.0 };
            b += binomial(alpha, j) * binomial(j, m) * sign * mu01[j];
        }
        acc += b;
        levels.push(acc.clamp(0.0, 1.0));
    }
    // Enforce monotonicity against the alternating-sum cancellation noise.
    for i in 1..levels.len() {
        if levels[i] < levels[i - 1] {
            levels[i] = levels[i - 1];
        }
    }
    levels
}

impl QuantileEstimator for MnatEstimator {
    fn name(&self) -> &'static str {
        "mnat"
    }

    fn estimate(&self, sketch: &MomentsSketch, phis: &[f64]) -> Result<Vec<f64>> {
        let (dom, _mono, is_log) = scaled_setup(sketch, self.source)?;
        // Re-shift onto [0, 1]: y = (x - lo) / (hi - lo).
        let (lo, hi) = (dom.center - dom.radius, dom.center + dom.radius);
        let dom01 = ScaledDomain {
            center: lo,
            radius: (hi - lo).max(f64::MIN_POSITIVE),
        };
        let raw = match self.source {
            MomentSource::Standard => sketch.moments(),
            MomentSource::Log => sketch.log_moments(),
        };
        let cap = crate::stats::max_stable_k(0.5).min(raw.len() - 1);
        let mu01 = crate::stats::shifted_moments(&raw[..=cap], &dom01);
        let levels = mnat_cdf_levels(&mu01);
        let alpha = levels.len() - 1;
        // Convert the staircase into point masses at cell midpoints of the
        // scaled [-1, 1] domain and invert with interpolation.
        let mut grid = Vec::with_capacity(alpha + 1);
        let mut masses = Vec::with_capacity(alpha + 1);
        let mut prev = 0.0;
        for (m, &level) in levels.iter().enumerate() {
            let y_mid = (m as f64 + 0.5) / (alpha as f64 + 1.0);
            grid.push(2.0 * y_mid - 1.0); // [0,1] -> [-1,1]
            masses.push((level - prev).max(0.0));
            prev = level;
        }
        quantiles_from_masses(&grid, &masses, phis, &dom, is_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::test_support::*;

    #[test]
    fn cdf_levels_monotone_and_normalized() {
        let data: Vec<f64> = (0..5000).map(|i| i as f64 / 4999.0).collect();
        let s = MomentsSketch::from_data(10, &data);
        let dom01 = ScaledDomain {
            center: 0.0,
            radius: 1.0,
        };
        let mu01 = crate::stats::shifted_moments(&s.moments(), &dom01);
        let levels = mnat_cdf_levels(&mu01);
        for w in levels.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((levels.last().unwrap() - 1.0).abs() < 0.05);
    }

    #[test]
    fn coarse_but_sane_on_uniform() {
        let data: Vec<f64> = (0..20_000).map(|i| i as f64 / 19_999.0).collect();
        let s = MomentsSketch::from_data(10, &data);
        let ps = phis21();
        let qs = MnatEstimator::default().estimate(&s, &ps).unwrap();
        let err = avg_error(&data, &qs, &ps);
        // Mnatsakanov at alpha=10 is coarse; expect moderate error.
        assert!(err < 0.12, "err {err}");
    }

    #[test]
    fn log_source_on_heavy_tail() {
        let data = lognormal_grid(20_000, 2.0);
        let s = MomentsSketch::from_data(10, &data);
        let ps = phis21();
        let qs = MnatEstimator {
            source: MomentSource::Log,
        }
        .estimate(&s, &ps)
        .unwrap();
        let err_log = avg_error(&data, &qs, &ps);
        let qs_std = MnatEstimator::default().estimate(&s, &ps).unwrap();
        let err_std = avg_error(&data, &qs_std, &ps);
        assert!(
            err_log < err_std,
            "log source should help: {err_log} vs {err_std}"
        );
    }

    #[test]
    fn less_accurate_than_opt() {
        // The core claim of the lesion study.
        let data = normal_grid(30_000);
        let s = MomentsSketch::from_data(10, &data);
        let ps = phis21();
        let mnat = MnatEstimator::default().estimate(&s, &ps).unwrap();
        let opt = crate::estimators::OptEstimator::default()
            .estimate(&s, &ps)
            .unwrap();
        assert!(avg_error(&data, &mnat, &ps) > avg_error(&data, &opt, &ps));
    }
}
