//! The `cvx-maxent` lesion estimator: discretize the domain and solve the
//! maximum entropy problem with a *generic* dual Newton method on the grid
//! (Boyd & Vandenberghe, Chapter 7) — no Chebyshev-approximation tricks,
//! no closed-form integrals.
//!
//! Accuracy matches the optimized solver (same objective, discretized),
//! but every iteration costs `O(grid × k²)` exponentials, making it two to
//! three orders of magnitude slower — the "maximum entropy is accurate,
//! generic solvers are slow" row pair of Figure 10.

use super::{quantiles_from_masses, scaled_setup, uniform_grid, MomentSource, QuantileEstimator};
use crate::{Error, MomentsSketch, Result};
use numerics::chebyshev;
use numerics::linalg::Matrix;
use numerics::optimize::{newton_minimize, NewtonObjective, NewtonOptions};

/// Discretized maximum entropy via dual Newton on a uniform grid.
#[derive(Debug, Clone, Copy)]
pub struct CvxMaxEntEstimator {
    /// Which moment set to use.
    pub source: MomentSource,
    /// Discretization points (the paper uses 1000).
    pub grid: usize,
}

impl Default for CvxMaxEntEstimator {
    fn default() -> Self {
        CvxMaxEntEstimator {
            source: MomentSource::Standard,
            grid: 1000,
        }
    }
}

/// Dual objective: `L(θ) = Δ Σ_i exp(Σ_j θ_j g_j(u_i)) - θ·μ̃` with
/// Chebyshev constraint functions `g_j = T_j` (the basis change only
/// reparametrizes the same density family; it keeps the generic solver
/// from failing for reasons unrelated to its cost).
struct GridDual {
    /// `g[j][i] = T_j(u_i)`.
    g: Vec<Vec<f64>>,
    mu: Vec<f64>,
    du: f64,
}

impl NewtonObjective for GridDual {
    fn dim(&self) -> usize {
        self.mu.len()
    }

    fn eval(&mut self, theta: &[f64], grad: &mut [f64], hess: &mut Matrix) -> f64 {
        let dim = self.mu.len();
        let n = self.g[0].len();
        grad.iter_mut().for_each(|x| *x = 0.0);
        hess.fill_zero();
        let mut total = 0.0;
        for i in 0..n {
            let mut s = 0.0;
            for (t, gj) in theta.iter().zip(&self.g) {
                s += t * gj[i];
            }
            if s > 500.0 {
                return f64::INFINITY;
            }
            let f = s.exp() * self.du;
            total += f;
            for a in 0..dim {
                let ga = self.g[a][i];
                grad[a] += ga * f;
                for b in a..dim {
                    hess[(a, b)] += ga * self.g[b][i] * f;
                }
            }
        }
        for a in 0..dim {
            grad[a] -= self.mu[a];
            for b in 0..a {
                hess[(a, b)] = hess[(b, a)];
            }
        }
        total - numerics::dot(theta, &self.mu)
    }
}

impl QuantileEstimator for CvxMaxEntEstimator {
    fn name(&self) -> &'static str {
        "cvx-maxent"
    }

    fn estimate(&self, sketch: &MomentsSketch, phis: &[f64]) -> Result<Vec<f64>> {
        let (dom, mono, is_log) = scaled_setup(sketch, self.source)?;
        let mu = crate::stats::cheb_moments_from_mono(&mono);
        let n = self.grid.max(16);
        let grid = uniform_grid(n);
        let dim = mu.len();
        let g: Vec<Vec<f64>> = (0..dim)
            .map(|j| grid.iter().map(|&u| chebyshev::t_eval(j, u)).collect())
            .collect();
        let mut obj = GridDual {
            g,
            mu,
            du: 2.0 / n as f64,
        };
        let mut theta0 = vec![0.0; dim];
        theta0[0] = (0.5f64).ln();
        let res = newton_minimize(&mut obj, &theta0, NewtonOptions::default()).map_err(|e| {
            Error::SolverFailed {
                reason: format!("cvx-maxent: {e}"),
            }
        })?;
        // Recover the masses at the grid points.
        let masses: Vec<f64> = (0..n)
            .map(|i| {
                let mut s = 0.0;
                for (t, gj) in res.theta.iter().zip(&obj.g) {
                    s += t * gj[i];
                }
                s.exp() * obj.du
            })
            .collect();
        quantiles_from_masses(&grid, &masses, phis, &dom, is_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::test_support::*;
    use crate::estimators::OptEstimator;

    #[test]
    fn matches_optimized_solver_accuracy() {
        let data = normal_grid(30_000);
        let s = MomentsSketch::from_data(10, &data);
        let ps = phis21();
        let cvx = CvxMaxEntEstimator::default().estimate(&s, &ps).unwrap();
        let opt = OptEstimator::default().estimate(&s, &ps).unwrap();
        let e_cvx = avg_error(&data, &cvx, &ps);
        let e_opt = avg_error(&data, &opt, &ps);
        assert!(e_cvx < 0.01, "cvx error {e_cvx}");
        assert!((e_cvx - e_opt).abs() < 0.01, "{e_cvx} vs {e_opt}");
    }

    #[test]
    fn uniform_data_gives_uniform_density() {
        let data: Vec<f64> = (0..20_000).map(|i| i as f64 / 19_999.0).collect();
        let s = MomentsSketch::from_data(8, &data);
        let ps = phis21();
        let qs = CvxMaxEntEstimator {
            grid: 400,
            ..Default::default()
        }
        .estimate(&s, &ps)
        .unwrap();
        let err = avg_error(&data, &qs, &ps);
        assert!(err < 0.01, "err {err}");
    }

    #[test]
    fn log_source_on_heavy_tail() {
        let data = lognormal_grid(30_000, 1.8);
        let s = MomentsSketch::from_data(10, &data);
        let ps = phis21();
        let qs = CvxMaxEntEstimator {
            source: MomentSource::Log,
            grid: 500,
        }
        .estimate(&s, &ps)
        .unwrap();
        let err = avg_error(&data, &qs, &ps);
        assert!(err < 0.01, "err {err}");
    }
}
