//! The `newton` lesion estimator: the paper's continuous maximum-entropy
//! objective, but with every gradient/Hessian entry evaluated by adaptive
//! Romberg quadrature instead of the Chebyshev-approximation pipeline of
//! Section 4.3.
//!
//! Identical solution to the optimized solver (same convex problem), but
//! each Newton iteration performs `O(k²)` independent numerical integrals
//! with hundreds of `exp` evaluations each — the paper measures the
//! optimized pipeline ~20× faster, and Figure 10 shows `newton` an order
//! of magnitude slower than `opt`.

use super::{quantiles_from_masses, QuantileEstimator};
use crate::solver::basis::{cheb_moments, Basis, PrimaryDomain};
use crate::{Error, MomentsSketch, Result, SolverConfig};
use numerics::integrate::romberg;
use numerics::linalg::Matrix;
use numerics::optimize::{newton_minimize, NewtonObjective, NewtonOptions};

/// Naive-integration Newton solver over the continuous objective.
#[derive(Debug, Clone, Copy)]
pub struct NaiveNewtonEstimator {
    /// Standard moments to use.
    pub k1: usize,
    /// Log moments to use.
    pub k2: usize,
    /// Romberg tolerance per integral.
    pub tol: f64,
}

impl Default for NaiveNewtonEstimator {
    fn default() -> Self {
        NaiveNewtonEstimator {
            k1: 10,
            k2: 0,
            tol: 1e-9,
        }
    }
}

struct RombergObjective<'a> {
    basis: &'a Basis,
    tol: f64,
}

impl RombergObjective<'_> {
    fn density(&self, theta: &[f64], u: f64) -> f64 {
        let mut s = 0.0;
        for (i, t) in theta.iter().enumerate() {
            s += t * self.basis.eval(i, u);
        }
        if s > 500.0 {
            f64::INFINITY
        } else {
            s.exp()
        }
    }

    fn integral<F: FnMut(f64) -> f64>(&self, f: F) -> f64 {
        romberg(f, -1.0, 1.0, self.tol, 22).unwrap_or(f64::INFINITY)
    }
}

impl NewtonObjective for RombergObjective<'_> {
    fn dim(&self) -> usize {
        self.basis.dim()
    }

    fn eval(&mut self, theta: &[f64], grad: &mut [f64], hess: &mut Matrix) -> f64 {
        let dim = self.basis.dim();
        // One numerical integral per value / gradient / Hessian entry —
        // the naive O(k²) integration cost the paper optimizes away.
        let total = self.integral(|u| self.density(theta, u));
        if !total.is_finite() {
            return f64::INFINITY;
        }
        #[allow(clippy::needless_range_loop)] // index doubles as the moment order
        for i in 0..dim {
            grad[i] = self.integral(|u| self.basis.eval(i, u) * self.density(theta, u))
                - self.basis.mu[i];
        }
        for i in 0..dim {
            for j in i..dim {
                let v = self.integral(|u| {
                    self.basis.eval(i, u) * self.basis.eval(j, u) * self.density(theta, u)
                });
                hess[(i, j)] = v;
                hess[(j, i)] = v;
            }
        }
        total - numerics::dot(theta, &self.basis.mu)
    }
}

/// Build the same basis the optimized solver would use for forced
/// `(k1, k2)` counts.
pub(crate) fn forced_basis(sketch: &MomentsSketch, k1: usize, k2: usize) -> Result<Basis> {
    let moments = cheb_moments(sketch, k2 > 0)?;
    let avail_s = moments.std_cheb.len() - 1;
    let avail_l = moments.log_cheb.as_ref().map_or(0, |l| l.len() - 1);
    let k1 = k1.min(avail_s);
    let k2 = k2.min(avail_l);
    let mut mu = vec![1.0];
    mu.extend_from_slice(&moments.std_cheb[1..=k1]);
    if k2 > 0 {
        mu.extend_from_slice(&moments.log_cheb.as_ref().unwrap()[1..=k2]);
    }
    Ok(Basis {
        k1,
        k2,
        primary: if k2 > 0 {
            PrimaryDomain::Log
        } else {
            PrimaryDomain::Standard
        },
        std_dom: moments.std_dom,
        log_dom: moments.log_dom,
        mu,
    })
}

impl QuantileEstimator for NaiveNewtonEstimator {
    fn name(&self) -> &'static str {
        "newton"
    }

    fn estimate(&self, sketch: &MomentsSketch, phis: &[f64]) -> Result<Vec<f64>> {
        if sketch.is_empty() {
            return Err(Error::EmptySketch);
        }
        if sketch.min() >= sketch.max() {
            return Ok(vec![sketch.min(); phis.len()]);
        }
        let basis = forced_basis(sketch, self.k1, self.k2)?;
        let mut obj = RombergObjective {
            basis: &basis,
            tol: self.tol,
        };
        let mut theta0 = vec![0.0; basis.dim()];
        theta0[0] = (0.5f64).ln();
        let cfg = SolverConfig::default();
        let res = newton_minimize(
            &mut obj,
            &theta0,
            NewtonOptions {
                grad_tol: cfg.grad_tol.max(1e-9),
                max_iter: cfg.max_iter,
                ..Default::default()
            },
        )
        .map_err(|e| Error::SolverFailed {
            reason: format!("naive newton: {e}"),
        })?;
        // Quantiles from a fine grid of the solved density.
        let n = 2048;
        let grid = super::uniform_grid(n);
        let du = 2.0 / n as f64;
        let masses: Vec<f64> = grid
            .iter()
            .map(|&u| obj.density(&res.theta, u) * du)
            .collect();
        let dom = match basis.primary {
            PrimaryDomain::Standard => basis.std_dom,
            PrimaryDomain::Log => *basis.log_dom.as_ref().unwrap(),
        };
        let is_log = basis.primary == PrimaryDomain::Log;
        quantiles_from_masses(&grid, &masses, phis, &dom, is_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::test_support::*;
    use crate::estimators::OptEstimator;

    #[test]
    fn agrees_with_optimized_solver() {
        let data = normal_grid(20_000);
        let s = MomentsSketch::from_data(8, &data);
        let ps = phis21();
        let naive = NaiveNewtonEstimator {
            k1: 8,
            k2: 0,
            tol: 1e-9,
        }
        .estimate(&s, &ps)
        .unwrap();
        let opt = OptEstimator {
            config: SolverConfig {
                k1: Some(8),
                k2: Some(0),
                ..Default::default()
            },
        }
        .estimate(&s, &ps)
        .unwrap();
        for (a, b) in naive.iter().zip(&opt) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn log_moment_configuration() {
        let data = lognormal_grid(20_000, 1.5);
        let s = MomentsSketch::from_data(8, &data);
        let ps = phis21();
        let qs = NaiveNewtonEstimator {
            k1: 0,
            k2: 8,
            tol: 1e-8,
        }
        .estimate(&s, &ps)
        .unwrap();
        let err = avg_error(&data, &qs, &ps);
        assert!(err < 0.01, "err {err}");
    }

    #[test]
    fn point_mass_short_circuits() {
        let s = MomentsSketch::from_data(4, &[3.0, 3.0]);
        let qs = NaiveNewtonEstimator::default()
            .estimate(&s, &[0.5])
            .unwrap();
        assert_eq!(qs[0], 3.0);
    }
}
