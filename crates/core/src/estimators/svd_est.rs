//! The `svd` lesion estimator: discretize the domain and take the
//! *least-norm* density matching the moments, via the pseudo-inverse of
//! the moment matrix (one-sided Jacobi SVD).
//!
//! No positivity or entropy regularization — the solution can dip
//! negative, which is exactly why it is less accurate than the maximum
//! entropy routes in Figure 10 (we clamp negatives when forming the CDF).

use super::{quantiles_from_masses, scaled_setup, uniform_grid, MomentSource, QuantileEstimator};
use crate::{MomentsSketch, Result};
use numerics::linalg::Matrix;
use numerics::svd::least_norm_solve;

/// Least-norm discretized density via SVD pseudo-inverse.
#[derive(Debug, Clone, Copy)]
pub struct SvdEstimator {
    /// Which moment set to use.
    pub source: MomentSource,
    /// Discretization points (the paper uses 1000).
    pub grid: usize,
}

impl Default for SvdEstimator {
    fn default() -> Self {
        SvdEstimator {
            source: MomentSource::Standard,
            grid: 256,
        }
    }
}

impl QuantileEstimator for SvdEstimator {
    fn name(&self) -> &'static str {
        "svd"
    }

    fn estimate(&self, sketch: &MomentsSketch, phis: &[f64]) -> Result<Vec<f64>> {
        let (dom, mono, is_log) = scaled_setup(sketch, self.source)?;
        let n = self.grid.max(8);
        let grid = uniform_grid(n);
        let k = mono.len() - 1;
        // Moment matrix A[j][i] = u_i^j; constraints A p = mono.
        let mut a = Matrix::zeros(k + 1, n);
        for (i, &u) in grid.iter().enumerate() {
            let mut pw = 1.0;
            for j in 0..=k {
                a[(j, i)] = pw;
                pw *= u;
            }
        }
        let p = least_norm_solve(&a, &mono, 1e-12);
        quantiles_from_masses(&grid, &p, phis, &dom, is_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::test_support::*;

    #[test]
    fn reasonable_on_smooth_symmetric_data() {
        let data = normal_grid(30_000);
        let s = MomentsSketch::from_data(10, &data);
        let ps = phis21();
        let qs = SvdEstimator::default().estimate(&s, &ps).unwrap();
        let err = avg_error(&data, &qs, &ps);
        assert!(err < 0.05, "err {err}");
    }

    #[test]
    fn solution_matches_constraints() {
        // The least-norm density must reproduce the input moments.
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64 / 9999.0).powi(2)).collect();
        let s = MomentsSketch::from_data(8, &data);
        let (dom, mono, _) = crate::estimators::scaled_setup(&s, MomentSource::Standard).unwrap();
        let n = 256;
        let grid = uniform_grid(n);
        let k = mono.len() - 1;
        let mut a = Matrix::zeros(k + 1, n);
        for (i, &u) in grid.iter().enumerate() {
            let mut pw = 1.0;
            for j in 0..=k {
                a[(j, i)] = pw;
                pw *= u;
            }
        }
        let p = least_norm_solve(&a, &mono, 1e-12);
        let recon = a.matvec(&p);
        for (r, m) in recon.iter().zip(&mono) {
            assert!((r - m).abs() < 1e-8, "{r} vs {m}");
        }
        let _ = dom;
    }

    #[test]
    fn worse_than_opt_on_long_tail() {
        let data = lognormal_grid(30_000, 1.5);
        let s = MomentsSketch::from_data(10, &data);
        let ps = phis21();
        let svd = SvdEstimator {
            source: MomentSource::Log,
            grid: 256,
        }
        .estimate(&s, &ps)
        .unwrap();
        let opt = crate::estimators::OptEstimator::default()
            .estimate(&s, &ps)
            .unwrap();
        let e_svd = avg_error(&data, &svd, &ps);
        let e_opt = avg_error(&data, &opt, &ps);
        assert!(e_opt <= e_svd + 1e-6, "opt {e_opt} vs svd {e_svd}");
    }
}
