//! The `gaussian` lesion estimator: fit a normal distribution to the first
//! two moments and read quantiles off its quantile function.
//!
//! Fast (microseconds) but ignores every moment beyond the second, so it
//! is badly biased on anything non-Gaussian — the cheapest row of
//! Figure 10. With [`MomentSource::Log`] it fits a log-normal instead,
//! which is what the paper's milan configuration amounts to.

use super::{MomentSource, QuantileEstimator};
use crate::{Error, MomentsSketch, Result};
use numerics::special::inv_norm_cdf;

/// Normal / log-normal moment fit.
#[derive(Debug, Clone, Copy)]
pub struct GaussianEstimator {
    /// Which moment set to fit.
    pub source: MomentSource,
}

impl Default for GaussianEstimator {
    fn default() -> Self {
        GaussianEstimator {
            source: MomentSource::Standard,
        }
    }
}

impl QuantileEstimator for GaussianEstimator {
    fn name(&self) -> &'static str {
        "gaussian"
    }

    fn estimate(&self, sketch: &MomentsSketch, phis: &[f64]) -> Result<Vec<f64>> {
        if sketch.is_empty() {
            return Err(Error::EmptySketch);
        }
        let (m1, m2, is_log) = match self.source {
            MomentSource::Standard => {
                let m = sketch.moments();
                (m[1], m[2], false)
            }
            MomentSource::Log => {
                if !sketch.log_usable() {
                    return Err(Error::InvalidArgument(
                        "log moments unavailable (non-positive data)",
                    ));
                }
                let m = sketch.log_moments();
                (m[1], m[2], true)
            }
        };
        let sigma = (m2 - m1 * m1).max(0.0).sqrt();
        phis.iter()
            .map(|&phi| {
                if !(phi > 0.0 && phi < 1.0) {
                    return Err(Error::InvalidQuantile(phi));
                }
                let q = m1 + sigma * inv_norm_cdf(phi);
                let q = if is_log { q.exp() } else { q };
                Ok(q.clamp(sketch.min(), sketch.max()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::test_support::*;

    #[test]
    fn exact_on_gaussian_data() {
        let data = normal_grid(50_000);
        let s = MomentsSketch::from_data(10, &data);
        let est = GaussianEstimator::default();
        let ps = phis21();
        let qs = est.estimate(&s, &ps).unwrap();
        assert!(avg_error(&data, &qs, &ps) < 0.005);
    }

    #[test]
    fn lognormal_fit_with_log_source() {
        let data = lognormal_grid(50_000, 1.5);
        let s = MomentsSketch::from_data(10, &data);
        let est = GaussianEstimator {
            source: MomentSource::Log,
        };
        let ps = phis21();
        let qs = est.estimate(&s, &ps).unwrap();
        assert!(avg_error(&data, &qs, &ps) < 0.01);
    }

    #[test]
    fn biased_on_skewed_data_with_standard_source() {
        // Exponential data: a two-moment normal fit is visibly wrong.
        let data: Vec<f64> = (1..50_000)
            .map(|i| -(1.0 - i as f64 / 50_000.0f64).ln())
            .collect();
        let s = MomentsSketch::from_data(10, &data);
        let est = GaussianEstimator::default();
        let ps = phis21();
        let qs = est.estimate(&s, &ps).unwrap();
        assert!(avg_error(&data, &qs, &ps) > 0.02);
    }

    #[test]
    fn estimates_clamped_to_range() {
        let data = vec![1.0, 1.1, 0.9, 1.05, 0.95];
        let s = MomentsSketch::from_data(4, &data);
        let qs = GaussianEstimator::default()
            .estimate(&s, &[0.001, 0.999])
            .unwrap();
        assert!(qs[0] >= s.min());
        assert!(qs[1] <= s.max());
    }
}
