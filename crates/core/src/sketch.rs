//! The moments sketch data structure (Algorithm 1 of the paper).
//!
//! The sketch is an array of floating point values: `min`, `max`, the count
//! `n`, the unscaled power sums `Σ x^i`, and the unscaled log power sums
//! `Σ ln^i x` for `i ∈ {1, ..., k}` (Figure 2). Following the paper's
//! implementation note, we accumulate the unscaled sums rather than the
//! normalized moments so that merging is pure addition.
//!
//! Log-moments are only meaningful when every value is positive; following
//! the paper we skip non-positive points when accumulating log sums and
//! ignore log-moments entirely at estimation time if `min <= 0`.

use crate::{Error, Result};

/// Mergeable quantile summary tracking min, max, count, and the first `k`
/// power sums and log power sums.
///
/// Size is `(3 + 2k) * 8` bytes of floating point state — 184 bytes at the
/// paper's default `k = 10`.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentsSketch {
    min: f64,
    max: f64,
    /// `power_sums[i] = Σ x^i`; `power_sums\[0\] = n`.
    power_sums: Vec<f64>,
    /// `log_sums[i] = Σ (ln x)^i` over positive `x`; `log_sums\[0\]` counts
    /// the positive points.
    log_sums: Vec<f64>,
}

impl MomentsSketch {
    /// Create an empty sketch of order `k >= 1` (the highest tracked
    /// moment power).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "sketch order must be at least 1");
        MomentsSketch {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            power_sums: vec![0.0; k + 1],
            log_sums: vec![0.0; k + 1],
        }
    }

    /// Build a sketch of order `k` over a slice of values.
    pub fn from_data(k: usize, data: &[f64]) -> Self {
        let mut s = MomentsSketch::new(k);
        s.accumulate_all(data);
        s
    }

    /// Rebuild a sketch from raw parts (used by deserialization and the
    /// low-precision codec).
    pub(crate) fn from_parts(
        min: f64,
        max: f64,
        power_sums: Vec<f64>,
        log_sums: Vec<f64>,
    ) -> Result<Self> {
        if power_sums.is_empty() || power_sums.len() != log_sums.len() {
            return Err(Error::Corrupt("power/log sum length mismatch"));
        }
        Ok(MomentsSketch {
            min,
            max,
            power_sums,
            log_sums,
        })
    }

    /// The sketch order `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.power_sums.len() - 1
    }

    /// Number of accumulated points.
    #[inline]
    pub fn count(&self) -> f64 {
        self.power_sums[0]
    }

    /// True when no points have been accumulated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.power_sums[0] <= 0.0
    }

    /// Minimum accumulated value (`+inf` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum accumulated value (`-inf` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unscaled power sums `[n, Σx, Σx², ...]`.
    #[inline]
    pub fn power_sums(&self) -> &[f64] {
        &self.power_sums
    }

    /// Unscaled log power sums `[n_pos, Σ ln x, Σ ln² x, ...]`.
    #[inline]
    pub fn log_sums(&self) -> &[f64] {
        &self.log_sums
    }

    /// True when log-moments are usable for estimation: all points are
    /// strictly positive (paper Section 4.1).
    #[inline]
    pub fn log_usable(&self) -> bool {
        !self.is_empty() && self.min > 0.0 && self.log_sums[0] == self.power_sums[0]
    }

    /// Normalized standard moments `μ_i = (1/n) Σ x^i`, with `μ_0 = 1`.
    pub fn moments(&self) -> Vec<f64> {
        let n = self.count();
        self.power_sums.iter().map(|&s| s / n).collect()
    }

    /// Normalized log moments `ν_i = (1/n⁺) Σ ln^i x` over positive points.
    pub fn log_moments(&self) -> Vec<f64> {
        let n = self.log_sums[0];
        if n <= 0.0 {
            return vec![0.0; self.log_sums.len()];
        }
        self.log_sums.iter().map(|&s| s / n).collect()
    }

    /// Mean of the accumulated data.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.power_sums[1] / self.count()
    }

    /// Variance of the accumulated data (population variance).
    #[inline]
    pub fn variance(&self) -> f64 {
        let n = self.count();
        let mean = self.power_sums[1] / n;
        (self.power_sums[2] / n - mean * mean).max(0.0)
    }

    /// Accumulate a single point (pointwise update of Algorithm 1).
    #[inline]
    pub fn accumulate(&mut self, x: f64) {
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let mut pw = 1.0;
        for slot in self.power_sums.iter_mut() {
            *slot += pw;
            pw *= x;
        }
        if x > 0.0 {
            let lx = x.ln();
            let mut pw = 1.0;
            for slot in self.log_sums.iter_mut() {
                *slot += pw;
                pw *= lx;
            }
        }
    }

    /// Accumulate a slice of points — the batched ingest path.
    ///
    /// Performs exactly the per-element operations of [`Self::accumulate`]
    /// in the same order, so the resulting power sums are bit-identical to
    /// pointwise accumulation (the sharded ingestion engine's equivalence
    /// guarantee rests on this). The win is structural: `min`/`max` ride
    /// in registers instead of being re-read and re-written through
    /// `&mut self` per point, and the power-sum slices are borrowed once
    /// for the whole slice.
    pub fn accumulate_all(&mut self, data: &[f64]) {
        let mut min = self.min;
        let mut max = self.max;
        let ps = &mut self.power_sums[..];
        let ls = &mut self.log_sums[..];
        for &x in data {
            min = min.min(x);
            max = max.max(x);
            let mut pw = 1.0;
            for slot in ps.iter_mut() {
                *slot += pw;
                pw *= x;
            }
            if x > 0.0 {
                let lx = x.ln();
                let mut pw = 1.0;
                for slot in ls.iter_mut() {
                    *slot += pw;
                    pw *= lx;
                }
            }
        }
        self.min = min;
        self.max = max;
    }

    /// Merge another sketch into this one (Algorithm 1).
    ///
    /// Merging is lossless: a sketch built by merging partitions equals
    /// (up to float roundoff) one built by pointwise accumulation over
    /// the union.
    ///
    /// Sketches of different orders merge at the *lower* order — the
    /// higher moments have no counterpart and are discarded (this sketch
    /// is truncated if it is the higher-order one). Same-order merging is
    /// a handful of float additions.
    ///
    /// # Examples
    ///
    /// ```
    /// use moments_sketch::MomentsSketch;
    /// let mut a = MomentsSketch::from_data(10, &[1.0, 2.0]);
    /// a.merge(&MomentsSketch::from_data(10, &[3.0]));
    /// assert_eq!(a.count(), 3.0);
    /// assert_eq!(a.max(), 3.0);
    /// ```
    #[inline]
    pub fn merge(&mut self, other: &MomentsSketch) {
        if self.k() != other.k() {
            self.merge_truncating(other);
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.power_sums.iter_mut().zip(&other.power_sums) {
            *a += b;
        }
        for (a, b) in self.log_sums.iter_mut().zip(&other.log_sums) {
            *a += b;
        }
    }

    /// Cold path of [`Self::merge`] for mismatched orders.
    #[cold]
    fn merge_truncating(&mut self, other: &MomentsSketch) {
        let k = self.k().min(other.k());
        self.power_sums.truncate(k + 1);
        self.log_sums.truncate(k + 1);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.power_sums.iter_mut().zip(&other.power_sums) {
            *a += b;
        }
        for (a, b) in self.log_sums.iter_mut().zip(&other.log_sums) {
            *a += b;
        }
    }

    /// Remove a previously merged sketch (turnstile semantics, used by the
    /// sliding-window workload of Section 7.2.2).
    ///
    /// Power sums subtract exactly, but `min`/`max` cannot shrink — they
    /// remain conservative bounds on the window contents, which keeps all
    /// estimates valid (quantiles are clamped to `[min, max]`). As with
    /// [`Self::merge`], mismatched orders operate at the lower order.
    #[inline]
    pub fn sub(&mut self, other: &MomentsSketch) {
        if self.k() > other.k() {
            self.power_sums.truncate(other.k() + 1);
            self.log_sums.truncate(other.k() + 1);
        }
        for (a, b) in self.power_sums.iter_mut().zip(&other.power_sums) {
            *a -= b;
        }
        for (a, b) in self.log_sums.iter_mut().zip(&other.log_sums) {
            *a -= b;
        }
        // Guard against tiny negative counts from float cancellation.
        if self.power_sums[0] < 0.5 {
            self.power_sums[0] = self.power_sums[0].max(0.0);
        }
        if self.log_sums[0] < 0.5 {
            self.log_sums[0] = self.log_sums[0].max(0.0);
        }
    }

    /// Merge-of-two convenience, returning a new sketch.
    pub fn merged(&self, other: &MomentsSketch) -> MomentsSketch {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// In-memory size of the floating point state in bytes:
    /// `(3 + 2k) * 8` (min, max, count, k moments, k log moments), the
    /// quantity the paper reports as the sketch footprint.
    pub fn size_bytes(&self) -> usize {
        (3 + 2 * self.k()) * std::mem::size_of::<f64>()
    }

    /// Estimate quantiles by solving the maximum entropy problem
    /// (Section 4.2). Convenience wrapper over [`crate::solver`].
    pub fn solve(&self, config: &crate::solver::SolverConfig) -> Result<crate::MaxEntSolution> {
        crate::solver::solve(self, config)
    }

    /// Estimate a single quantile with the default solver configuration.
    pub fn quantile(&self, phi: f64) -> Result<f64> {
        self.solve(&crate::solver::SolverConfig::default())?
            .quantile(phi)
    }

    /// Estimate a quantile together with its certified enclosure: the
    /// max-entropy point estimate plus the `[lo, hi]` interval every
    /// moment-consistent dataset must respect (Markov ∩ RTT bounds,
    /// inverted by bisection).
    ///
    /// # Examples
    ///
    /// ```
    /// use moments_sketch::MomentsSketch;
    /// let data: Vec<f64> = (1..=10_000).map(f64::from).collect();
    /// let sketch = MomentsSketch::from_data(10, &data);
    /// let (est, interval) = sketch.quantile_with_bounds(0.9).unwrap();
    /// assert!(interval.lo <= est && est <= interval.hi);
    /// assert!(interval.lo <= 9_000.0 && 9_000.0 <= interval.hi);
    /// ```
    pub fn quantile_with_bounds(&self, phi: f64) -> Result<(f64, crate::bounds::QuantileInterval)> {
        let est = crate::solver::solve_robust(self, &crate::solver::SolverConfig::default())?
            .quantile(phi)?;
        let interval = crate::bounds::quantile_interval(self, phi, 60);
        // The estimate is consistent with the sketch's moments up to solver
        // tolerance; clamp into the certified interval so callers can rely
        // on `lo <= est <= hi`.
        Ok((est.clamp(interval.lo, interval.hi), interval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_properties() {
        let s = MomentsSketch::new(5);
        assert!(s.is_empty());
        assert_eq!(s.k(), 5);
        assert_eq!(s.count(), 0.0);
        assert!(!s.log_usable());
    }

    #[test]
    fn accumulate_tracks_basic_statistics() {
        let mut s = MomentsSketch::new(4);
        s.accumulate_all(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.mean(), 2.5);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        let m = s.moments();
        assert_eq!(m[0], 1.0);
        assert_eq!(m[1], 2.5);
        assert_eq!(m[2], 7.5); // (1+4+9+16)/4
    }

    #[test]
    fn log_sums_skip_nonpositive() {
        let mut s = MomentsSketch::new(3);
        s.accumulate_all(&[-1.0, 0.0, std::f64::consts::E]);
        assert_eq!(s.log_sums()[0], 1.0); // only e counted
        assert!((s.log_sums()[1] - 1.0).abs() < 1e-12);
        assert!(!s.log_usable()); // min <= 0
    }

    #[test]
    fn log_usable_when_all_positive() {
        let s = MomentsSketch::from_data(3, &[0.5, 1.0, 2.0]);
        assert!(s.log_usable());
        let lm = s.log_moments();
        let expect = (0.5f64.ln() + 0.0 + 2.0f64.ln()) / 3.0;
        assert!((lm[1] - expect).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_pointwise_accumulation() {
        let data: Vec<f64> = (1..=100).map(|i| (i as f64).sqrt()).collect();
        let whole = MomentsSketch::from_data(8, &data);
        let mut merged = MomentsSketch::new(8);
        for chunk in data.chunks(7) {
            merged.merge(&MomentsSketch::from_data(8, chunk));
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        for (a, b) in merged.power_sums().iter().zip(whole.power_sums()) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
        }
        for (a, b) in merged.log_sums().iter().zip(whole.log_sums()) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
        }
    }

    #[test]
    fn sub_inverts_merge() {
        let a = MomentsSketch::from_data(6, &[1.0, 2.0, 3.0]);
        let b = MomentsSketch::from_data(6, &[4.0, 5.0]);
        let mut m = a.merged(&b);
        m.sub(&b);
        assert_eq!(m.count(), a.count());
        for (x, y) in m.power_sums().iter().zip(a.power_sums()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn mismatched_orders_merge_at_lower_order() {
        let data_a = [1.0, 2.0, 3.0];
        let data_b = [4.0, 5.0];
        let mut a = MomentsSketch::from_data(10, &data_a);
        let b = MomentsSketch::from_data(6, &data_b);
        a.merge(&b);
        assert_eq!(a.k(), 6);
        assert_eq!(a.count(), 5.0);
        // Equivalent to building at order 6 from the union.
        let mut union = data_a.to_vec();
        union.extend_from_slice(&data_b);
        let direct = MomentsSketch::from_data(6, &union);
        for (x, y) in a.power_sums().iter().zip(direct.power_sums()) {
            assert!((x - y).abs() < 1e-9);
        }
        // Lower-order self absorbing higher-order other also works.
        let mut c = MomentsSketch::from_data(4, &data_a);
        c.merge(&MomentsSketch::from_data(12, &data_b));
        assert_eq!(c.k(), 4);
        assert_eq!(c.count(), 5.0);
    }

    #[test]
    fn size_matches_paper_footprint() {
        // k = 10 -> 184 bytes, under the paper's 200-byte budget.
        let s = MomentsSketch::new(10);
        assert_eq!(s.size_bytes(), 184);
        assert!(s.size_bytes() < 200);
    }

    #[test]
    fn merged_handles_disjoint_ranges() {
        let a = MomentsSketch::from_data(2, &[10.0, 20.0]);
        let b = MomentsSketch::from_data(2, &[-5.0]);
        let m = a.merged(&b);
        assert_eq!(m.min(), -5.0);
        assert_eq!(m.max(), 20.0);
        assert!(!m.log_usable()); // b poisoned positivity
    }
}
