//! Low-precision sketch storage with randomized rounding (Appendix C of
//! the paper).
//!
//! When space is tight and the data well-centered, the sketch values can
//! be stored with far fewer mantissa bits than a full `f64`. The paper
//! shows 20 bits per value suffices on real datasets — a 3× reduction —
//! before accuracy degrades. We reproduce the scheme: each value keeps its
//! sign and full 11-bit exponent but quantizes the 52-bit mantissa to `p`
//! bits using *randomized* rounding (round up with probability equal to
//! the dropped fraction), so quantization error stays unbiased across the
//! many merges of an aggregation query.

use crate::{Error, MomentsSketch, Result};

/// Codec storing each sketch value in `bits` total bits
/// (1 sign + 11 exponent + `bits - 12` mantissa).
#[derive(Debug, Clone, Copy)]
pub struct LowPrecisionCodec {
    /// Total bits per value; clamped to `\[13, 64\]`.
    pub bits: u32,
}

impl LowPrecisionCodec {
    /// Create a codec with the given per-value bit budget.
    pub fn new(bits: u32) -> Self {
        LowPrecisionCodec {
            bits: bits.clamp(13, 64),
        }
    }

    /// Mantissa bits kept.
    #[inline]
    fn mantissa_bits(&self) -> u32 {
        (self.bits - 12).min(52)
    }

    /// Quantize one value with randomized rounding driven by `rng_state`.
    pub fn quantize(&self, v: f64, rng_state: &mut u64) -> f64 {
        let p = self.mantissa_bits();
        if p >= 52 || v == 0.0 || !v.is_finite() {
            return v;
        }
        let drop = 52 - p;
        let bits = v.to_bits();
        let sign = bits & (1u64 << 63);
        let mag = bits & !(1u64 << 63);
        let low = mag & ((1u64 << drop) - 1);
        let floor = mag & !((1u64 << drop) - 1);
        // Randomized rounding: round up with probability low / 2^drop.
        let r = splitmix64(rng_state) & ((1u64 << drop) - 1);
        let rounded = if r < low {
            // Carry may propagate into the exponent; for finite magnitudes
            // this correctly lands on the next representable coarse value.
            floor + (1u64 << drop)
        } else {
            floor
        };
        f64::from_bits(sign | rounded)
    }

    /// Encode a sketch into a packed little-endian bitstream.
    ///
    /// `seed` drives the randomized rounding (vary it per sketch so
    /// rounding errors stay independent across merges).
    pub fn encode(&self, sketch: &MomentsSketch, seed: u64) -> Vec<u8> {
        let k = sketch.k();
        let mut writer = BitWriter::new();
        writer.bytes.push(self.bits as u8);
        writer.bytes.extend_from_slice(&(k as u16).to_le_bytes());
        let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut put = |w: &mut BitWriter, v: f64| {
            let q = self.quantize(v, &mut rng);
            w.write_value(q, self.mantissa_bits());
        };
        put(&mut writer, sketch.min());
        put(&mut writer, sketch.max());
        for &v in sketch.power_sums() {
            put(&mut writer, v);
        }
        for &v in sketch.log_sums() {
            put(&mut writer, v);
        }
        writer.finish()
    }

    /// Decode a sketch from a packed bitstream produced by [`Self::encode`].
    pub fn decode(buf: &[u8]) -> Result<MomentsSketch> {
        if buf.len() < 3 {
            return Err(Error::Corrupt("truncated low-precision header"));
        }
        let bits = buf[0] as u32;
        if !(13..=64).contains(&bits) {
            return Err(Error::Corrupt("invalid bit width"));
        }
        let k = u16::from_le_bytes([buf[1], buf[2]]) as usize;
        if k == 0 {
            return Err(Error::Corrupt("order must be at least 1"));
        }
        let mantissa = (bits - 12).min(52);
        let mut reader = BitReader::new(&buf[3..]);
        let n_values = 2 + 2 * (k + 1);
        let mut values = Vec::with_capacity(n_values);
        for _ in 0..n_values {
            values.push(
                reader
                    .read_value(mantissa)
                    .ok_or(Error::Corrupt("truncated low-precision body"))?,
            );
        }
        let min = values[0];
        let max = values[1];
        let power_sums = values[2..2 + (k + 1)].to_vec();
        let log_sums = values[2 + (k + 1)..].to_vec();
        MomentsSketch::from_parts(min, max, power_sums, log_sums)
    }

    /// Encoded size in bytes for a sketch of order `k`.
    pub fn encoded_size(&self, k: usize) -> usize {
        let n_values = 2 + 2 * (k + 1);
        3 + (n_values * self.bits as usize).div_ceil(8)
    }
}

/// SplitMix64 step (deterministic, allocation-free).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal MSB-first bit writer.
struct BitWriter {
    bytes: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }

    fn write_bits(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        let mut remaining = width;
        let mut v = value;
        while remaining > 0 {
            let take = (8 - self.nbits % 8).min(remaining);
            let shift = remaining - take;
            let chunk = (v >> shift) & ((1u64 << take) - 1);
            self.acc = (self.acc << take) | chunk;
            self.nbits += take;
            remaining -= take;
            v &= (1u64 << shift).wrapping_sub(1);
            if self.nbits.is_multiple_of(8) {
                self.bytes.push((self.acc & 0xFF) as u8);
                self.acc = 0;
            }
        }
    }

    /// Pack sign (1), exponent (11), and the top `mantissa` bits.
    fn write_value(&mut self, v: f64, mantissa: u32) {
        let bits = v.to_bits();
        let sign = bits >> 63;
        let exp = (bits >> 52) & 0x7FF;
        let man = (bits & ((1u64 << 52) - 1)) >> (52 - mantissa);
        self.write_bits(sign, 1);
        self.write_bits(exp, 11);
        self.write_bits(man, mantissa);
    }

    fn finish(mut self) -> Vec<u8> {
        let pad = (8 - self.nbits % 8) % 8;
        if pad > 0 {
            self.acc <<= pad;
            self.bytes.push((self.acc & 0xFF) as u8);
        }
        self.bytes
    }
}

/// Minimal MSB-first bit reader.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn read_bits(&mut self, width: u32) -> Option<u64> {
        debug_assert!(width < 64);
        while self.nbits < width {
            let byte = *self.bytes.get(self.pos)?;
            self.pos += 1;
            self.acc = (self.acc << 8) | byte as u64;
            self.nbits += 8;
        }
        let shift = self.nbits - width;
        let out = (self.acc >> shift) & ((1u64 << width) - 1);
        self.acc &= (1u64 << shift).wrapping_sub(1);
        self.nbits -= width;
        Some(out)
    }

    fn read_value(&mut self, mantissa: u32) -> Option<f64> {
        let sign = self.read_bits(1)?;
        let exp = self.read_bits(11)?;
        let man = self.read_bits(mantissa)? << (52 - mantissa);
        Some(f64::from_bits((sign << 63) | (exp << 52) | man))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_precision_is_lossless() {
        let s = MomentsSketch::from_data(8, &[0.5, 1.5, 2.25, 100.0]);
        let codec = LowPrecisionCodec::new(64);
        let back = LowPrecisionCodec::decode(&codec.encode(&s, 7)).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn quantization_error_is_bounded() {
        let codec = LowPrecisionCodec::new(24); // 12 mantissa bits
        let mut rng = 42u64;
        for &v in &[1.0, -3.7, 1e10, 2.3e-8, 123456.789] {
            let q = codec.quantize(v, &mut rng);
            let rel = ((q - v) / v).abs();
            assert!(rel < 1.0 / (1u64 << 11) as f64, "v={v} q={q} rel={rel}");
        }
    }

    #[test]
    fn randomized_rounding_is_unbiased() {
        // Average of many quantizations should approach the true value
        // much more closely than a single rounding step.
        let codec = LowPrecisionCodec::new(16); // 4 mantissa bits
        let v = 1.0 + 1.0 / 37.0;
        let mut rng = 1u64;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| codec.quantize(v, &mut rng)).sum::<f64>() / n as f64;
        let step = v * (1.0 / 16.0); // quantization step at 4 bits
        assert!((mean - v).abs() < step / 20.0, "mean {mean} vs {v}");
    }

    #[test]
    fn encode_decode_roundtrip_at_reduced_precision() {
        let data: Vec<f64> = (1..=1000).map(|i| (i as f64).sqrt()).collect();
        let s = MomentsSketch::from_data(10, &data);
        let codec = LowPrecisionCodec::new(20);
        let bytes = codec.encode(&s, 99);
        assert_eq!(bytes.len(), codec.encoded_size(10));
        let back = LowPrecisionCodec::decode(&bytes).unwrap();
        assert_eq!(back.k(), 10);
        // Count survives approximately; moments within quantization error.
        assert!((back.count() - s.count()).abs() / s.count() < 1e-2);
        for (a, b) in back.power_sums().iter().zip(s.power_sums()) {
            if *b != 0.0 {
                assert!(((a - b) / b).abs() < 1e-2, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn encoded_size_shrinks_with_bits() {
        let c20 = LowPrecisionCodec::new(20);
        let c64 = LowPrecisionCodec::new(64);
        assert!(c20.encoded_size(10) * 3 < c64.encoded_size(10));
    }

    #[test]
    fn decode_rejects_truncation() {
        let s = MomentsSketch::from_data(6, &[1.0, 2.0, 3.0]);
        let codec = LowPrecisionCodec::new(20);
        let bytes = codec.encode(&s, 3);
        assert!(LowPrecisionCodec::decode(&bytes[..bytes.len() / 2]).is_err());
        assert!(LowPrecisionCodec::decode(&[]).is_err());
    }

    #[test]
    fn reduced_precision_preserves_estimates() {
        // 20-bit storage should barely move the quantile estimates
        // (Figure 17's plateau).
        let data: Vec<f64> = (1..=20_000)
            .map(|i| (i as f64 / 200.0).sin() + 2.0)
            .collect();
        let s = MomentsSketch::from_data(10, &data);
        let codec = LowPrecisionCodec::new(24);
        let back = LowPrecisionCodec::decode(&codec.encode(&s, 5)).unwrap();
        let q_full = s.quantile(0.9).unwrap();
        let q_low = back.quantile(0.9).unwrap();
        assert!(
            (q_full - q_low).abs() < 0.05 * q_full.abs(),
            "{q_full} vs {q_low}"
        );
    }
}
