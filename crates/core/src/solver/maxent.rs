//! The maximum-entropy potential, its gradient, and its Hessian, evaluated
//! with the paper's Chebyshev-approximation trick (Section 4.3.1).
//!
//! The potential of Mead & Papanicolaou (Eq. 5 of the paper) is
//!
//! ```text
//! L(θ) = ∫ exp(Σ_i θ_i m̃_i(u)) du − Σ_i θ_i μ̃_i
//! ```
//!
//! over the primary variable `u ∈ [-1, 1]`, with gradient
//! `∂L/∂θ_i = ∫ m̃_i f − μ̃_i` and Hessian `∫ m̃_i m̃_j f` (Eq. 6). The
//! expensive part is the integrals. We:
//!
//! 1. interpolate `f(·; θ)` at `N + 1` Chebyshev–Lobatto nodes into a
//!    degree-`N` series via one fast cosine transform per iteration;
//! 2. represent each basis function — and, once per solve, each pairwise
//!    product `m̃_i m̃_j` — as a Chebyshev series (`θ`-independent);
//! 3. integrate products of series in closed form through
//!    `T_a T_b = (T_{a+b} + T_{|a−b|})/2` and `∫ T_n = 2/(1−n²)` (even n).
//!
//! Everything `θ`-independent is hoisted into "pairing vectors" `p` such
//! that `∫ m̃_i m̃_j f ≈ pᵀ c_f` where `c_f` is the per-iteration series of
//! `f`, so each Newton step costs one cosine transform plus dense dot
//! products.

use super::basis::Basis;
use numerics::chebyshev;
use numerics::linalg::Matrix;
use numerics::optimize::NewtonObjective;

/// Saturation threshold for exponents inside `exp`; beyond this the
/// density has diverged and the line search must reject the step.
const EXP_CAP: f64 = 500.0;

/// Precomputed state for evaluating `L`, `∇L`, and `∇²L` at any `θ`.
pub struct MaxEntObjective {
    dim: usize,
    /// Basis values at the Lobatto nodes: `dim x (N + 1)`.
    basis_nodes: Vec<Vec<f64>>,
    /// Gradient pairing vectors: `dim x (N + 1)`.
    grad_pair: Vec<Vec<f64>>,
    /// Upper-triangle Hessian pairing vectors: `dim (dim+1) / 2 x (N+1)`.
    hess_pair: Vec<Vec<f64>>,
    /// `∫ T_m` for `m = 0..=N`.
    t_int: Vec<f64>,
    /// Target moments `μ̃`.
    mu: Vec<f64>,
    /// Scratch: density values at nodes.
    node_f: Vec<f64>,
    /// Number of interpolation panels `N` (power of two).
    n_nodes: usize,
    /// Cosine transforms performed (the paper's reported bottleneck).
    pub fct_count: std::cell::Cell<usize>,
}

impl MaxEntObjective {
    /// Build the objective for a basis, precomputing node values, basis
    /// series, product series, and pairing vectors.
    pub fn new(basis: &Basis, n_nodes: usize) -> Self {
        assert!(n_nodes.is_power_of_two() && n_nodes >= 8);
        let dim = basis.dim();
        let nodes = chebyshev::lobatto_nodes(n_nodes);
        // Basis values at nodes.
        let basis_nodes: Vec<Vec<f64>> = (0..dim)
            .map(|i| nodes.iter().map(|&u| basis.eval(i, u)).collect())
            .collect();
        // Chebyshev series for each basis function. Primary-domain
        // functions are exact unit series; secondary-domain functions are
        // interpolated from their node values (one cosine transform each).
        let series: Vec<Vec<f64>> = (0..dim)
            .map(|i| {
                if let Some(order) = primary_order(basis, i) {
                    let mut s = vec![0.0; order + 1];
                    s[order] = 1.0;
                    s
                } else {
                    chebyshev::interpolate_values(&basis_nodes[i])
                }
            })
            .collect();
        // Integrals of T_m for m up to the largest index a pairing touches:
        // product series reach 2N, pairing adds another N.
        let t_int: Vec<f64> = (0..=3 * n_nodes + 2).map(chebyshev::t_integral).collect();
        // Pairing vectors.
        let grad_pair: Vec<Vec<f64>> = series
            .iter()
            .map(|s| pairing_vector(s, n_nodes, &t_int))
            .collect();
        let mut hess_pair = Vec::with_capacity(dim * (dim + 1) / 2);
        for i in 0..dim {
            for j in i..dim {
                let prod = chebyshev::mul(&series[i], &series[j]);
                hess_pair.push(pairing_vector(&prod, n_nodes, &t_int));
            }
        }
        MaxEntObjective {
            dim,
            basis_nodes,
            grad_pair,
            hess_pair,
            t_int,
            mu: basis.mu.clone(),
            node_f: vec![0.0; n_nodes + 1],
            n_nodes,
            fct_count: std::cell::Cell::new(0),
        }
    }

    /// The number of Lobatto panels `N`.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Density values at the Lobatto nodes for a given `θ` (diagnostics
    /// and final-series construction).
    pub fn density_at_nodes(&self, theta: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_nodes + 1];
        self.fill_node_density(theta, &mut out);
        out
    }

    fn fill_node_density(&self, theta: &[f64], out: &mut [f64]) {
        for (j, slot) in out.iter_mut().enumerate() {
            let mut s = 0.0;
            for (ti, row) in theta.iter().zip(&self.basis_nodes) {
                s += ti * row[j];
            }
            *slot = if s > EXP_CAP { f64::INFINITY } else { s.exp() };
        }
    }

    /// Index into the packed upper-triangle Hessian pairing table.
    #[inline]
    fn tri_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i <= j);
        i * self.dim - i * (i + 1) / 2 + j
    }

    /// Value and gradient only (no Hessian) — used by the first-order
    /// `bfgs` lesion estimator, which must not pay for second-order
    /// information.
    pub fn eval_value_grad(&mut self, theta: &[f64], grad: &mut [f64]) -> f64 {
        let mut node_f = std::mem::take(&mut self.node_f);
        self.fill_node_density(theta, &mut node_f);
        if node_f.iter().any(|f| !f.is_finite()) {
            self.node_f = node_f;
            return f64::INFINITY;
        }
        let c_f = chebyshev::interpolate_values(&node_f);
        self.fct_count.set(self.fct_count.get() + 1);
        self.node_f = node_f;
        let integral: f64 = c_f.iter().zip(&self.t_int).map(|(&c, &i)| c * i).sum();
        for (g, (pair, mu)) in grad.iter_mut().zip(self.grad_pair.iter().zip(&self.mu)) {
            *g = numerics::dot(pair, &c_f) - mu;
        }
        integral - numerics::dot(theta, &self.mu)
    }
}

/// Chebyshev order of basis function `i` when it is a plain polynomial of
/// the primary variable (constant and primary-domain functions); `None`
/// for secondary-domain functions that require interpolation.
fn primary_order(basis: &Basis, i: usize) -> Option<usize> {
    use super::basis::PrimaryDomain;
    if i == 0 {
        return Some(0);
    }
    match basis.primary {
        PrimaryDomain::Standard if i <= basis.k1 => Some(i),
        PrimaryDomain::Log if i > basis.k1 => Some(i - basis.k1),
        _ => None,
    }
}

/// Pairing vector `p[m] = ∫ s(u) T_m(u) du` for `m = 0..=N`, computed in
/// closed form from the series coefficients of `s`.
fn pairing_vector(series: &[f64], n_nodes: usize, t_int: &[f64]) -> Vec<f64> {
    let mut p = vec![0.0; n_nodes + 1];
    for (m, slot) in p.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (n, &a) in series.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            acc += a * 0.5 * (t_int[n + m] + t_int[n.abs_diff(m)]);
        }
        *slot = acc;
    }
    p
}

impl NewtonObjective for MaxEntObjective {
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval(&mut self, theta: &[f64], grad: &mut [f64], hess: &mut Matrix) -> f64 {
        // Density at nodes.
        let mut node_f = std::mem::take(&mut self.node_f);
        self.fill_node_density(theta, &mut node_f);
        if node_f.iter().any(|f| !f.is_finite()) {
            self.node_f = node_f;
            // Diverged: force rejection by the line search.
            return f64::INFINITY;
        }
        // One cosine transform: Chebyshev series of f.
        let c_f = chebyshev::interpolate_values(&node_f);
        self.fct_count.set(self.fct_count.get() + 1);
        self.node_f = node_f;
        // Value.
        let integral: f64 = c_f.iter().zip(&self.t_int).map(|(&c, &i)| c * i).sum();
        let value = integral - numerics::dot(theta, &self.mu);
        // Gradient.
        for (g, (pair, mu)) in grad.iter_mut().zip(self.grad_pair.iter().zip(&self.mu)) {
            *g = numerics::dot(pair, &c_f) - mu;
        }
        // Hessian (symmetric).
        for i in 0..self.dim {
            for j in i..self.dim {
                let h = numerics::dot(&self.hess_pair[self.tri_index(i, j)], &c_f);
                hess[(i, j)] = h;
                hess[(j, i)] = h;
            }
        }
        value
    }
}

/// Hessian of the potential at the uniform initialization (`f = 1/2`),
/// used by the moment-selection heuristic: entries are
/// `H_ij = 0.5 ∫ m̃_i m̃_j du`, i.e. the basis Gram matrix under the
/// uniform measure.
pub fn uniform_hessian(basis: &Basis, n_nodes: usize) -> Matrix {
    let obj = MaxEntObjective::new(basis, n_nodes);
    let dim = basis.dim();
    let mut h = Matrix::zeros(dim, dim);
    for i in 0..dim {
        for j in i..dim {
            // Pairing against the series of the constant 1/2 = 0.5 T_0.
            let v = 0.5 * obj.hess_pair[obj.tri_index(i, j)][0];
            h[(i, j)] = v;
            h[(j, i)] = v;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::basis::{cheb_moments, Basis, PrimaryDomain};
    use crate::MomentsSketch;
    use numerics::optimize::{newton_minimize, NewtonOptions};

    fn basis_for(data: &[f64], k1: usize, k2: usize, primary: PrimaryDomain) -> Basis {
        let s = MomentsSketch::from_data(12, data);
        let m = cheb_moments(&s, true).unwrap();
        let mut mu = vec![1.0];
        mu.extend_from_slice(&m.std_cheb[1..=k1]);
        if k2 > 0 {
            mu.extend_from_slice(&m.log_cheb.as_ref().unwrap()[1..=k2]);
        }
        Basis {
            k1,
            k2,
            primary,
            std_dom: m.std_dom,
            log_dom: m.log_dom,
            mu,
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data: Vec<f64> = (1..=500).map(|i| (i as f64 / 50.0).exp()).collect();
        let basis = basis_for(&data, 3, 2, PrimaryDomain::Log);
        let mut obj = MaxEntObjective::new(&basis, 64);
        let dim = basis.dim();
        let theta: Vec<f64> = (0..dim).map(|i| -0.3 + 0.1 * i as f64).collect();
        let mut grad = vec![0.0; dim];
        let mut hess = Matrix::zeros(dim, dim);
        let v0 = obj.eval(&theta, &mut grad, &mut hess);
        assert!(v0.is_finite());
        let g0 = grad.clone();
        let h = 1e-6;
        for i in 0..dim {
            let mut tp = theta.clone();
            tp[i] += h;
            let vp = obj.eval(&tp, &mut grad, &mut hess);
            tp[i] -= 2.0 * h;
            let vm = obj.eval(&tp, &mut grad, &mut hess);
            let fd = (vp - vm) / (2.0 * h);
            assert!(
                (fd - g0[i]).abs() < 1e-5 * (1.0 + fd.abs()),
                "i={i}: fd {fd} vs analytic {}",
                g0[i]
            );
        }
    }

    #[test]
    fn hessian_matches_gradient_differences() {
        let data: Vec<f64> = (1..=400).map(|i| 1.0 + (i as f64).sqrt()).collect();
        let basis = basis_for(&data, 4, 0, PrimaryDomain::Standard);
        let mut obj = MaxEntObjective::new(&basis, 64);
        let dim = basis.dim();
        let theta = vec![-0.7, 0.2, -0.1, 0.05, 0.01];
        let mut grad = vec![0.0; dim];
        let mut hess = Matrix::zeros(dim, dim);
        obj.eval(&theta, &mut grad, &mut hess);
        let h0 = hess.clone();
        let h = 1e-6;
        for j in 0..dim {
            let mut tp = theta.clone();
            tp[j] += h;
            obj.eval(&tp, &mut grad, &mut hess);
            let gp = grad.clone();
            tp[j] -= 2.0 * h;
            obj.eval(&tp, &mut grad, &mut hess);
            let gm = grad.clone();
            for i in 0..dim {
                let fd = (gp[i] - gm[i]) / (2.0 * h);
                assert!(
                    (fd - h0[(i, j)]).abs() < 1e-4 * (1.0 + fd.abs()),
                    "({i},{j}): fd {fd} vs analytic {}",
                    h0[(i, j)]
                );
            }
        }
    }

    #[test]
    fn solves_uniform_data_to_near_uniform_density() {
        // For uniform data the maximum entropy density is ~uniform, so
        // θ ≈ (ln(1/2), 0, 0, ...).
        let data: Vec<f64> = (0..4000).map(|i| i as f64 / 3999.0).collect();
        let basis = basis_for(&data, 4, 0, PrimaryDomain::Standard);
        let mut obj = MaxEntObjective::new(&basis, 64);
        let mut theta0 = vec![0.0; basis.dim()];
        theta0[0] = (0.5f64).ln();
        let res = newton_minimize(&mut obj, &theta0, NewtonOptions::default()).unwrap();
        assert!(res.grad_norm < 1e-8);
        assert!((res.theta[0] - (0.5f64).ln()).abs() < 0.01);
        for &t in &res.theta[1..] {
            assert!(t.abs() < 0.02, "theta {t}");
        }
    }

    #[test]
    fn diverged_theta_yields_infinite_value() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let basis = basis_for(&data, 2, 0, PrimaryDomain::Standard);
        let mut obj = MaxEntObjective::new(&basis, 32);
        let mut grad = vec![0.0; 3];
        let mut hess = Matrix::zeros(3, 3);
        let v = obj.eval(&[900.0, 0.0, 0.0], &mut grad, &mut hess);
        assert!(v.is_infinite());
    }

    #[test]
    fn uniform_hessian_is_gram_matrix() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        let basis = basis_for(&data, 3, 0, PrimaryDomain::Standard);
        let h = uniform_hessian(&basis, 64);
        // H_00 = 0.5 * ∫ 1 = 1. H_11 = 0.5 ∫ T_1² = 0.5 * (I_2 + I_0)/2 = 1/3.
        assert!((h[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((h[(1, 1)] - 1.0 / 3.0).abs() < 1e-12);
        // Odd-order cross terms vanish.
        assert!(h[(0, 1)].abs() < 1e-12);
    }
}
