//! Greedy selection of how many standard and log moments to use
//! (the `k1`, `k2` heuristic of Section 4.3.1).
//!
//! Using every stored moment is not always best: after floating-point
//! clamping, the remaining moments can still produce a Newton Hessian too
//! ill-conditioned to optimize. The paper's heuristic greedily increments
//! `k1` and `k2`, preferring whichever next moment is closer to the value
//! a uniform distribution would have (a proxy for "well-behaved"), and
//! stops when the condition number of the Hessian at the uniform starting
//! point would exceed `κ_max`.

use super::basis::{Basis, ChebMoments, PrimaryDomain};
use numerics::eigen::condition_number_sym;
use numerics::integrate::clenshaw_curtis_weights;
use numerics::linalg::Matrix;

/// Outcome of moment selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// Standard moments to use.
    pub k1: usize,
    /// Log moments to use.
    pub k2: usize,
    /// Condition number of the uniform-point Hessian for the selection.
    pub cond: f64,
}

/// Expected value of `T_n(u)` under the uniform distribution on `[-1, 1]`.
fn uniform_moment(n: usize) -> f64 {
    0.5 * numerics::chebyshev::t_integral(n)
}

/// Gram matrix `G_ij = 0.5 ∫ m̃_i m̃_j du` over the selected basis-function
/// indices, computed by Clenshaw–Curtis quadrature on the primary domain.
/// This equals the Newton Hessian at the uniform initialization.
fn gram_matrix(values: &[Vec<f64>], weights: &[f64], indices: &[usize]) -> Matrix {
    let d = indices.len();
    let mut g = Matrix::zeros(d, d);
    for (a, &i) in indices.iter().enumerate() {
        for (b, &j) in indices.iter().enumerate().skip(a) {
            let mut acc = 0.0;
            for ((&vi, &vj), &w) in values[i].iter().zip(&values[j]).zip(weights) {
                acc += w * vi * vj;
            }
            let v = 0.5 * acc;
            g[(a, b)] = v;
            g[(b, a)] = v;
        }
    }
    g
}

/// Greedily choose `(k1, k2)` with condition number below `kappa_max`.
///
/// `max_k1` / `max_k2` cap the candidates (post stability clamping);
/// `max_k2 = 0` disables log moments entirely.
pub fn select(moments: &ChebMoments, max_k1: usize, max_k2: usize, kappa_max: f64) -> Selection {
    let avail_s = (moments.std_cheb.len() - 1).min(max_k1);
    let avail_l = moments
        .log_cheb
        .as_ref()
        .map_or(0, |l| (l.len() - 1).min(max_k2));
    // Build the full candidate basis once; selection works on principal
    // submatrices of its Gram matrix. The primary domain matches what the
    // solver will use if any log moment is selected.
    let primary = if avail_l > 0 {
        PrimaryDomain::Log
    } else {
        PrimaryDomain::Standard
    };
    let full = Basis {
        k1: avail_s,
        k2: avail_l,
        primary,
        std_dom: moments.std_dom,
        log_dom: moments.log_dom,
        mu: vec![0.0; 1 + avail_s + avail_l],
    };
    let n_quad = 64;
    let nodes = numerics::chebyshev::lobatto_nodes(n_quad);
    let weights = clenshaw_curtis_weights(n_quad);
    let values: Vec<Vec<f64>> = (0..full.dim())
        .map(|i| nodes.iter().map(|&u| full.eval(i, u)).collect())
        .collect();

    let mut indices = vec![0usize]; // constant function always in
    let mut k1 = 0usize;
    let mut k2 = 0usize;
    let mut cond = 1.0;
    let mut std_dead = false;
    let mut log_dead = false;
    loop {
        // Candidate next moments with their distance-to-uniform score.
        let mut cands: Vec<(bool, f64)> = Vec::with_capacity(2);
        if !std_dead && k1 < avail_s {
            let next = k1 + 1;
            let d = (moments.std_cheb[next] - uniform_moment(next)).abs();
            cands.push((true, d));
        }
        if !log_dead && k2 < avail_l {
            let next = k2 + 1;
            let d = (moments.log_cheb.as_ref().unwrap()[next] - uniform_moment(next)).abs();
            cands.push((false, d));
        }
        if cands.is_empty() {
            break;
        }
        cands.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let mut accepted = false;
        for &(is_std, _) in &cands {
            let idx = if is_std { 1 + k1 } else { 1 + avail_s + k2 };
            indices.push(idx);
            let g = gram_matrix(&values, &weights, &indices);
            let c = condition_number_sym(&g);
            if c <= kappa_max {
                if is_std {
                    k1 += 1;
                } else {
                    k2 += 1;
                }
                cond = c;
                accepted = true;
                break;
            }
            indices.pop();
            if is_std {
                std_dead = true;
            } else {
                log_dead = true;
            }
        }
        if !accepted {
            break;
        }
    }
    Selection { k1, k2, cond }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::basis::cheb_moments;
    use crate::MomentsSketch;

    #[test]
    fn selects_moments_for_smooth_data() {
        let data: Vec<f64> = (1..=5000).map(|i| 1.0 + (i as f64 / 5000.0)).collect();
        let s = MomentsSketch::from_data(10, &data);
        let m = cheb_moments(&s, true).unwrap();
        let sel = select(&m, 10, 10, 1e4);
        assert!(sel.k1 + sel.k2 >= 6, "selected {:?}", sel);
        assert!(sel.cond <= 1e4);
    }

    #[test]
    fn respects_caps() {
        let data: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = MomentsSketch::from_data(10, &data);
        let m = cheb_moments(&s, true).unwrap();
        let sel = select(&m, 3, 2, 1e4);
        assert!(sel.k1 <= 3);
        assert!(sel.k2 <= 2);
    }

    #[test]
    fn no_log_moments_for_signed_data() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 / 500.0) - 1.0).collect();
        let s = MomentsSketch::from_data(8, &data);
        let m = cheb_moments(&s, true).unwrap();
        let sel = select(&m, 8, 8, 1e4);
        assert_eq!(sel.k2, 0);
        assert!(sel.k1 >= 4);
    }

    #[test]
    fn tight_kappa_limits_selection() {
        let data: Vec<f64> = (1..=2000).map(|i| (i as f64).powf(2.5)).collect();
        let s = MomentsSketch::from_data(12, &data);
        let m = cheb_moments(&s, true).unwrap();
        let loose = select(&m, 12, 12, 1e6);
        let tight = select(&m, 12, 12, 10.0);
        assert!(tight.k1 + tight.k2 <= loose.k1 + loose.k2);
        assert!(tight.cond <= 10.0);
    }

    #[test]
    fn uniform_moment_reference_values() {
        assert_eq!(uniform_moment(1), 0.0);
        assert!((uniform_moment(2) + 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(uniform_moment(3), 0.0);
    }
}
