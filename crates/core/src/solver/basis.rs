//! The Chebyshev constraint basis of the maximum-entropy problem
//! (Section 4.3.1 of the paper).
//!
//! Instead of the raw functions `x^i` and `log^i(x)` — whose Newton
//! Hessians are catastrophically ill-conditioned (the paper measures
//! `κ ≈ 3·10^31` at `k1 = 8`) — the solver uses Chebyshev polynomials of
//! linearly rescaled arguments:
//!
//! ```text
//! m̃_i(x) = T_i(s1(x))           i = 1..k1   (standard moments)
//! m̃_{k1+j}(x) = T_j(s2(ln x))   j = 1..k2   (log moments)
//! ```
//!
//! The optimization runs over a single *primary* variable on `[-1, 1]`:
//! the scaled `x` when only standard moments are used, the scaled `ln x`
//! whenever log moments participate (Appendix A.1 of the technical report
//! formulates the problem for either choice via `h(x) = log x` or
//! `h(x) = e^x`). Using the log domain as primary keeps every basis
//! function entire — `T_i(s1(exp(·)))` has no singularity — whereas
//! `ln(·)` blows up at the lower edge of the standard domain for
//! long-tailed data.

use crate::stats::ScaledDomain;
use crate::MomentsSketch;
use crate::{Error, Result};
use numerics::chebyshev;

/// Which variable the optimization integrates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimaryDomain {
    /// Integrate over `u = s1(x) ∈ [-1, 1]`.
    Standard,
    /// Integrate over `v = s2(ln x) ∈ [-1, 1]`.
    Log,
}

/// The active constraint basis: counts, domains, and target moments.
#[derive(Debug, Clone)]
pub struct Basis {
    /// Number of standard (Chebyshev) moment constraints, excluding the
    /// normalization constraint.
    pub k1: usize,
    /// Number of log (Chebyshev) moment constraints.
    pub k2: usize,
    /// Primary integration variable.
    pub primary: PrimaryDomain,
    /// Map between `[xmin, xmax]` and `[-1, 1]`.
    pub std_dom: ScaledDomain,
    /// Map between `[ln xmin, ln xmax]` and `[-1, 1]` (only when log
    /// moments are usable).
    pub log_dom: Option<ScaledDomain>,
    /// Target Chebyshev moments, ordered `[1, std_1.., log_1..]`;
    /// length `1 + k1 + k2`.
    pub mu: Vec<f64>,
}

impl Basis {
    /// Total number of basis functions including the constant.
    #[inline]
    pub fn dim(&self) -> usize {
        1 + self.k1 + self.k2
    }

    /// Map a data value to the primary variable.
    pub fn to_primary(&self, x: f64) -> f64 {
        match self.primary {
            PrimaryDomain::Standard => self.std_dom.scale(x),
            PrimaryDomain::Log => {
                let dom = self.log_dom.as_ref().expect("log primary without domain");
                dom.scale(x.max(f64::MIN_POSITIVE).ln())
            }
        }
    }

    /// Map a primary-variable value back to the data domain.
    pub fn from_primary(&self, u: f64) -> f64 {
        match self.primary {
            PrimaryDomain::Standard => self.std_dom.unscale(u),
            PrimaryDomain::Log => {
                let dom = self.log_dom.as_ref().expect("log primary without domain");
                dom.unscale(u).exp()
            }
        }
    }

    /// Evaluate basis function `i` at primary-variable value `u`.
    ///
    /// Index 0 is the constant; `1..=k1` are the standard-moment functions;
    /// `k1+1..=k1+k2` are the log-moment functions.
    pub fn eval(&self, i: usize, u: f64) -> f64 {
        if i == 0 {
            return 1.0;
        }
        let (std_arg, log_arg) = self.secondary_args(u);
        if i <= self.k1 {
            chebyshev::t_eval(i, std_arg)
        } else {
            chebyshev::t_eval(i - self.k1, log_arg)
        }
    }

    /// Compute both scaled arguments (standard and log) for a primary value.
    fn secondary_args(&self, u: f64) -> (f64, f64) {
        match self.primary {
            PrimaryDomain::Standard => {
                let x = self.std_dom.unscale(u);
                let log_arg = match &self.log_dom {
                    Some(dom) => dom.scale(x.max(f64::MIN_POSITIVE).ln()).clamp(-1.0, 1.0),
                    None => 0.0,
                };
                (u.clamp(-1.0, 1.0), log_arg)
            }
            PrimaryDomain::Log => {
                let dom = self.log_dom.as_ref().expect("log primary without domain");
                let x = dom.unscale(u).exp();
                (self.std_dom.scale(x).clamp(-1.0, 1.0), u.clamp(-1.0, 1.0))
            }
        }
    }
}

/// Chebyshev moments extracted from a sketch, after stability clamping.
#[derive(Debug, Clone)]
pub struct ChebMoments {
    /// `E[T_i(s1(x))]` for `i = 0..=k_std` (index 0 is 1).
    pub std_cheb: Vec<f64>,
    /// `E[T_j(s2(ln x))]` when log moments are usable.
    pub log_cheb: Option<Vec<f64>>,
    /// Standard-domain scaling.
    pub std_dom: ScaledDomain,
    /// Log-domain scaling, when usable.
    pub log_dom: Option<ScaledDomain>,
}

/// Compute stability-clamped Chebyshev moments from a sketch.
///
/// Applies the paper's two guards (Section 4.3.2): the closed-form cap on
/// the number of usable moments given the scaled-data offset `c`
/// (Equation 21), and a range check dropping any computed Chebyshev moment
/// outside `[-1, 1]` (impossible for exact moments, so a sure sign of
/// precision loss).
pub fn cheb_moments(sketch: &MomentsSketch, allow_log: bool) -> Result<ChebMoments> {
    if sketch.is_empty() {
        return Err(Error::EmptySketch);
    }
    let std_dom = ScaledDomain::from_range(sketch.min(), sketch.max());
    let std_cheb = clamped_cheb(&sketch.moments(), &std_dom);
    let (log_cheb, log_dom) = if allow_log && sketch.log_usable() {
        let lmin = sketch.min().ln();
        let lmax = sketch.max().ln();
        let dom = ScaledDomain::from_range(lmin, lmax);
        if dom.degenerate() {
            (None, None)
        } else {
            (Some(clamped_cheb(&sketch.log_moments(), &dom)), Some(dom))
        }
    } else {
        (None, None)
    };
    Ok(ChebMoments {
        std_cheb,
        log_cheb,
        std_dom,
        log_dom,
    })
}

/// Shift raw moments into `[-1, 1]`, convert to the Chebyshev basis, and
/// truncate at the first numerically untrustworthy entry.
fn clamped_cheb(raw: &[f64], dom: &ScaledDomain) -> Vec<f64> {
    let k_cap = crate::stats::max_stable_k(dom.offset()).min(raw.len() - 1);
    let mono = crate::stats::shifted_moments(&raw[..=k_cap], dom);
    let mut cheb = crate::stats::cheb_moments_from_mono(&mono);
    // |E[T_n(u)]| <= 1 always; out-of-range values signal precision loss.
    let mut valid = cheb.len();
    for (i, &c) in cheb.iter().enumerate().skip(1) {
        // NaN must also truncate here, so compare via the negation.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(c.abs() <= 1.0 + 1e-7) {
            valid = i;
            break;
        }
    }
    cheb.truncate(valid);
    // Clamp tiny overshoots from roundoff.
    for c in cheb.iter_mut() {
        *c = c.clamp(-1.0, 1.0);
    }
    cheb
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sketch() -> MomentsSketch {
        let data: Vec<f64> = (0..1000).map(|i| 1.0 + i as f64 / 999.0).collect();
        MomentsSketch::from_data(10, &data)
    }

    #[test]
    fn cheb_moments_of_uniform_data() {
        let m = cheb_moments(&uniform_sketch(), true).unwrap();
        // For uniform data on [-1, 1]: E[T_1] = 0, E[T_2] = -1/3 + O(1/n).
        assert!((m.std_cheb[0] - 1.0).abs() < 1e-12);
        assert!(m.std_cheb[1].abs() < 1e-3);
        assert!((m.std_cheb[2] + 1.0 / 3.0).abs() < 1e-2);
        assert!(m.log_cheb.is_some());
    }

    #[test]
    fn log_moments_absent_for_nonpositive_data() {
        let s = MomentsSketch::from_data(6, &[-1.0, 0.5, 2.0]);
        let m = cheb_moments(&s, true).unwrap();
        assert!(m.log_cheb.is_none());
        let m2 = cheb_moments(&uniform_sketch(), false).unwrap();
        assert!(m2.log_cheb.is_none());
    }

    #[test]
    fn basis_eval_standard_primary() {
        let m = cheb_moments(&uniform_sketch(), true).unwrap();
        let basis = Basis {
            k1: 3,
            k2: 2,
            primary: PrimaryDomain::Standard,
            std_dom: m.std_dom,
            log_dom: m.log_dom,
            mu: vec![1.0; 6],
        };
        assert_eq!(basis.dim(), 6);
        assert_eq!(basis.eval(0, 0.3), 1.0);
        // Standard functions are plain Chebyshev in u.
        assert!((basis.eval(2, 0.3) - chebyshev::t_eval(2, 0.3)).abs() < 1e-12);
        // Log functions stay within [-1, 1] envelope.
        for u in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            assert!(basis.eval(4, u).abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn basis_roundtrip_primary_mapping() {
        let m = cheb_moments(&uniform_sketch(), true).unwrap();
        for primary in [PrimaryDomain::Standard, PrimaryDomain::Log] {
            let basis = Basis {
                k1: 2,
                k2: 2,
                primary,
                std_dom: m.std_dom,
                log_dom: m.log_dom,
                mu: vec![1.0; 5],
            };
            for &x in &[1.0, 1.3, 1.77, 2.0] {
                let u = basis.to_primary(x);
                assert!((-1.0001..=1.0001).contains(&u));
                assert!((basis.from_primary(u) - x).abs() < 1e-9 * x);
            }
        }
    }

    #[test]
    fn basis_eval_log_primary_consistency() {
        // In log primary, the log functions are plain Chebyshev in v and
        // the standard ones agree with direct computation through x.
        let m = cheb_moments(&uniform_sketch(), true).unwrap();
        let basis = Basis {
            k1: 2,
            k2: 3,
            primary: PrimaryDomain::Log,
            std_dom: m.std_dom,
            log_dom: m.log_dom,
            mu: vec![1.0; 6],
        };
        for &v in &[-0.9, 0.0, 0.42, 1.0] {
            let x = basis.from_primary(v);
            let u = m.std_dom.scale(x);
            assert!((basis.eval(1, v) - chebyshev::t_eval(1, u)).abs() < 1e-9);
            assert!((basis.eval(3, v) - chebyshev::t_eval(1, v)).abs() < 1e-12);
        }
    }

    #[test]
    fn stability_truncation_on_extreme_offset() {
        // Data far from zero in a narrow band: large offset c, few stable
        // moments survive.
        let data: Vec<f64> = (0..100).map(|i| 1.0e6 + i as f64).collect();
        let s = MomentsSketch::from_data(14, &data);
        let m = cheb_moments(&s, true).unwrap();
        assert!(m.std_cheb.len() <= 14);
        for &c in &m.std_cheb {
            assert!(c.abs() <= 1.0);
        }
    }
}
