//! Maximum-entropy quantile estimation from a moments sketch
//! (Sections 4.2–4.3 of the paper).
//!
//! Given the moments recorded in a sketch, many distributions match them;
//! the solver picks the *maximum entropy* one — the least-informative
//! density consistent with the constraints — by minimizing the convex
//! potential of Mead & Papanicolaou with a damped Newton method. The
//! numerical pipeline is the paper's optimized design:
//!
//! 1. moments are shifted onto `[-1, 1]` and re-expressed in the Chebyshev
//!    basis ([`basis`]), capping the usable order per the floating-point
//!    stability rule (Section 4.3.2);
//! 2. how many standard/log moments to use is chosen greedily under a
//!    condition-number budget ([`selector`]);
//! 3. each Newton step costs one fast cosine transform plus closed-form
//!    series integrals ([`maxent`]);
//! 4. quantiles come from integrating the solved density (closed form on
//!    the series) and inverting the CDF with Brent's method.

pub mod basis;
pub mod maxent;
pub mod selector;

use crate::sketch::MomentsSketch;
use crate::{Error, Result};
use basis::{Basis, PrimaryDomain};
use numerics::chebyshev;
use numerics::optimize::{newton_minimize, NewtonOptions};
use numerics::roots::{brent, BrentOptions};

/// Configuration for the maximum-entropy solve.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Force the number of standard moments (clamped to availability);
    /// `None` selects automatically.
    pub k1: Option<usize>,
    /// Force the number of log moments; `None` selects automatically.
    pub k2: Option<usize>,
    /// Condition-number budget for moment selection (`κ_max`; the paper's
    /// evaluation uses `10^4`).
    pub kappa_max: f64,
    /// Newton convergence tolerance on the moment residuals (the paper
    /// runs until moments match within `δ = 10^-9`).
    pub grad_tol: f64,
    /// Maximum Newton iterations before reporting failure.
    pub max_iter: usize,
    /// Chebyshev interpolation panels (power of two); `None` picks 64, or
    /// 128 when standard and log bases mix.
    pub n_nodes: Option<usize>,
    /// Permit log moments at all (disabled for the Figure 9 ablation).
    pub use_log: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            k1: None,
            k2: None,
            kappa_max: 1e4,
            grad_tol: 1e-9,
            max_iter: 120,
            n_nodes: None,
            use_log: true,
        }
    }
}

/// A solved maximum-entropy density, ready to answer quantile and CDF
/// queries for the sketched dataset.
#[derive(Debug, Clone)]
pub struct MaxEntSolution {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    /// All mass at a single value (e.g. `xmin == xmax`).
    PointMass {
        x: f64,
        n: f64,
    },
    Solved(Box<Solved>),
}

#[derive(Debug, Clone)]
struct Solved {
    basis: Basis,
    theta: Vec<f64>,
    /// Chebyshev series of the density over the primary variable.
    pdf_series: Vec<f64>,
    /// Monotone sampled CDF on a uniform grid over `[-1, 1]`:
    /// `cdf_samples[i] = F(-1 + 2 i / M)`. Built from *clamped*
    /// non-negative density samples so monotonicity holds by construction
    /// even when the Chebyshev interpolant of a spiky density undershoots
    /// zero between nodes.
    cdf_samples: Vec<f64>,
    /// Total mass `F(1)` (≈ 1 after convergence).
    norm: f64,
    xmin: f64,
    xmax: f64,
    n: f64,
    iterations: usize,
    fct_count: usize,
    cond: f64,
}

impl MaxEntSolution {
    /// Estimated `φ`-quantile of the sketched data.
    pub fn quantile(&self, phi: f64) -> Result<f64> {
        if !(phi > 0.0 && phi < 1.0) {
            return Err(Error::InvalidQuantile(phi));
        }
        match &self.inner {
            Inner::PointMass { x, .. } => Ok(*x),
            Inner::Solved(s) => {
                let target = phi * s.norm;
                let u = brent(
                    |u| sample_cdf(&s.cdf_samples, u) - target,
                    -1.0,
                    1.0,
                    BrentOptions::default(),
                )
                .map_err(|e| Error::SolverFailed {
                    reason: format!("CDF inversion: {e}"),
                })?;
                Ok(s.basis.from_primary(u).clamp(s.xmin, s.xmax))
            }
        }
    }

    /// Estimate several quantiles at once.
    pub fn quantiles(&self, phis: &[f64]) -> Result<Vec<f64>> {
        phis.iter().map(|&p| self.quantile(p)).collect()
    }

    /// Estimated `P(X <= x)` under the maximum-entropy density.
    pub fn cdf(&self, x: f64) -> f64 {
        match &self.inner {
            Inner::PointMass { x: px, .. } => {
                if x >= *px {
                    1.0
                } else {
                    0.0
                }
            }
            Inner::Solved(s) => {
                if x <= s.xmin {
                    return 0.0;
                }
                if x >= s.xmax {
                    return 1.0;
                }
                let u = s.basis.to_primary(x).clamp(-1.0, 1.0);
                (sample_cdf(&s.cdf_samples, u) / s.norm).clamp(0.0, 1.0)
            }
        }
    }

    /// Density of the solution at `x` (in data units).
    pub fn pdf(&self, x: f64) -> f64 {
        match &self.inner {
            Inner::PointMass { .. } => f64::INFINITY,
            Inner::Solved(s) => {
                if x < s.xmin || x > s.xmax {
                    return 0.0;
                }
                let u = s.basis.to_primary(x).clamp(-1.0, 1.0);
                let f_u = chebyshev::clenshaw(&s.pdf_series, u).max(0.0) / s.norm;
                // Change of variables back to data units.
                let jacobian = match s.basis.primary {
                    PrimaryDomain::Standard => 1.0 / s.basis.std_dom.radius,
                    PrimaryDomain::Log => {
                        let dom = s.basis.log_dom.as_ref().unwrap();
                        1.0 / (dom.radius * x.max(f64::MIN_POSITIVE))
                    }
                };
                f_u * jacobian
            }
        }
    }

    /// Standard moments actually used.
    pub fn k1(&self) -> usize {
        match &self.inner {
            Inner::PointMass { .. } => 0,
            Inner::Solved(s) => s.basis.k1,
        }
    }

    /// Log moments actually used.
    pub fn k2(&self) -> usize {
        match &self.inner {
            Inner::PointMass { .. } => 0,
            Inner::Solved(s) => s.basis.k2,
        }
    }

    /// Newton iterations spent.
    pub fn iterations(&self) -> usize {
        match &self.inner {
            Inner::PointMass { .. } => 0,
            Inner::Solved(s) => s.iterations,
        }
    }

    /// Fast cosine transforms spent (the optimized solver's bottleneck).
    pub fn fct_count(&self) -> usize {
        match &self.inner {
            Inner::PointMass { .. } => 0,
            Inner::Solved(s) => s.fct_count,
        }
    }

    /// Condition number of the Hessian at the uniform initialization for
    /// the selected basis.
    pub fn condition_number(&self) -> f64 {
        match &self.inner {
            Inner::PointMass { .. } => 1.0,
            Inner::Solved(s) => s.cond,
        }
    }

    /// Final Newton parameters (diagnostics).
    pub fn theta(&self) -> &[f64] {
        match &self.inner {
            Inner::PointMass { .. } => &[],
            Inner::Solved(s) => &s.theta,
        }
    }

    /// Number of points in the underlying sketch.
    pub fn count(&self) -> f64 {
        match &self.inner {
            Inner::PointMass { n, .. } => *n,
            Inner::Solved(s) => s.n,
        }
    }
}

/// Cumulative-trapezoid CDF samples of a density series on a uniform grid
/// over `[-1, 1]`, with negative interpolation undershoot clamped to zero
/// so the result is monotone by construction.
pub(crate) fn monotone_cdf_samples(pdf_series: &[f64], m: usize) -> Vec<f64> {
    let du = 2.0 / m as f64;
    let mut out = Vec::with_capacity(m + 1);
    let mut prev_f = chebyshev::clenshaw(pdf_series, -1.0).max(0.0);
    let mut acc = 0.0;
    out.push(0.0);
    for i in 1..=m {
        let u = -1.0 + du * i as f64;
        let f = chebyshev::clenshaw(pdf_series, u).max(0.0);
        acc += 0.5 * (prev_f + f) * du;
        out.push(acc);
        prev_f = f;
    }
    out
}

/// Linear interpolation into uniform CDF samples at `u ∈ [-1, 1]`.
#[inline]
pub(crate) fn sample_cdf(samples: &[f64], u: f64) -> f64 {
    let m = samples.len() - 1;
    let pos = (u.clamp(-1.0, 1.0) + 1.0) * 0.5 * m as f64;
    let i = (pos.floor() as usize).min(m - 1);
    let frac = pos - i as f64;
    samples[i] + frac * (samples[i + 1] - samples[i])
}

/// Solve the maximum-entropy problem, backing off to fewer moments on
/// non-convergence.
///
/// Hard datasets (extreme tails, near-discrete data) can defeat a solve
/// with a forced moment count; dropping the highest-order constraints
/// yields a feasible, if coarser, estimate. Each retry removes roughly a
/// third of the constraints, preferring to shed whichever basis has more.
pub fn solve_robust(sketch: &MomentsSketch, config: &SolverConfig) -> Result<MaxEntSolution> {
    let mut cfg = *config;
    let mut last_err = None;
    for _ in 0..6 {
        match solve(sketch, &cfg) {
            Ok(sol) => return Ok(sol),
            Err(e @ Error::SolverFailed { .. }) => {
                last_err = Some(e);
                // Shrink the explicit caps (or set them from what the
                // failed solve would have used).
                let k1 = cfg.k1.unwrap_or(sketch.k());
                let k2 = cfg
                    .k2
                    .unwrap_or(if sketch.log_usable() { sketch.k() } else { 0 });
                if k1 + k2 <= 2 {
                    break;
                }
                if k1 >= k2 {
                    cfg.k1 = Some(k1.saturating_sub((k1 / 3).max(1)));
                    cfg.k2 = Some(k2);
                } else {
                    cfg.k1 = Some(k1);
                    cfg.k2 = Some(k2.saturating_sub((k2 / 3).max(1)));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or(Error::SolverFailed {
        reason: "no feasible moment subset".into(),
    }))
}

/// Solve the maximum-entropy problem for a sketch.
pub fn solve(sketch: &MomentsSketch, config: &SolverConfig) -> Result<MaxEntSolution> {
    if sketch.is_empty() {
        return Err(Error::EmptySketch);
    }
    if sketch.min() >= sketch.max() {
        return Ok(MaxEntSolution {
            inner: Inner::PointMass {
                x: sketch.min(),
                n: sketch.count(),
            },
        });
    }
    let moments = basis::cheb_moments(sketch, config.use_log)?;
    let avail_s = moments.std_cheb.len() - 1;
    let avail_l = moments.log_cheb.as_ref().map_or(0, |l| l.len() - 1);
    // Forced counts clamp to availability; otherwise run the selector.
    let (k1, k2, cond) = match (config.k1, config.k2) {
        (Some(f1), Some(f2)) => {
            let sel = (f1.min(avail_s), f2.min(avail_l));
            (sel.0, sel.1, f64::NAN)
        }
        _ => {
            let max1 = config.k1.unwrap_or(avail_s).min(avail_s);
            let max2 = config.k2.unwrap_or(avail_l).min(avail_l);
            let sel = selector::select(&moments, max1, max2, config.kappa_max);
            (sel.k1, sel.k2, sel.cond)
        }
    };
    let primary = if k2 > 0 {
        PrimaryDomain::Log
    } else {
        PrimaryDomain::Standard
    };
    let mut mu = Vec::with_capacity(1 + k1 + k2);
    mu.push(1.0);
    mu.extend_from_slice(&moments.std_cheb[1..=k1]);
    if k2 > 0 {
        mu.extend_from_slice(&moments.log_cheb.as_ref().unwrap()[1..=k2]);
    }
    let basis = Basis {
        k1,
        k2,
        primary,
        std_dom: moments.std_dom,
        log_dom: moments.log_dom,
        mu,
    };
    let n_nodes = config
        .n_nodes
        .unwrap_or(if k1 > 0 && k2 > 0 { 128 } else { 64 });
    let mut objective = maxent::MaxEntObjective::new(&basis, n_nodes);
    let mut theta0 = vec![0.0; basis.dim()];
    theta0[0] = (0.5f64).ln(); // uniform density on [-1, 1]
    let newton_opts = NewtonOptions {
        grad_tol: config.grad_tol,
        max_iter: config.max_iter,
        ..Default::default()
    };
    let res =
        newton_minimize(&mut objective, &theta0, newton_opts).map_err(|e| Error::SolverFailed {
            reason: e.to_string(),
        })?;
    let node_f = objective.density_at_nodes(&res.theta);
    let pdf_series = chebyshev::interpolate_values(&node_f);
    let cdf_samples = monotone_cdf_samples(&pdf_series, 1024);
    let norm = *cdf_samples.last().unwrap();
    if !(norm.is_finite() && norm > 0.0) {
        return Err(Error::SolverFailed {
            reason: format!("non-normalizable density (norm = {norm})"),
        });
    }
    Ok(MaxEntSolution {
        inner: Inner::Solved(Box::new(Solved {
            basis,
            theta: res.theta,
            pdf_series,
            cdf_samples,
            norm,
            xmin: sketch.min(),
            xmax: sketch.max(),
            n: sketch.count(),
            iterations: res.iterations,
            fct_count: objective.fct_count.get(),
            cond,
        })),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_quantile_error(data: &mut [f64], est: &[f64], phis: &[f64]) -> f64 {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = data.len() as f64;
        let mut total = 0.0;
        for (&q, &phi) in est.iter().zip(phis) {
            let rank = data.partition_point(|&x| x < q) as f64;
            total += (rank - phi * n).abs() / n;
        }
        total / phis.len() as f64
    }

    fn phis() -> Vec<f64> {
        // 21 evenly spaced quantiles in [.01, .99] as in the paper's eval.
        (0..21).map(|i| 0.01 + 0.049 * i as f64).collect()
    }

    #[test]
    fn uniform_data_estimates() {
        let mut data: Vec<f64> = (0..20_000).map(|i| i as f64 / 19_999.0).collect();
        let sketch = MomentsSketch::from_data(10, &data);
        let sol = solve(&sketch, &SolverConfig::default()).unwrap();
        let ps = phis();
        let est = sol.quantiles(&ps).unwrap();
        let err = avg_quantile_error(&mut data, &est, &ps);
        assert!(err < 0.005, "avg error {err}");
    }

    #[test]
    fn exponential_data_estimates() {
        // Deterministic Exp(1) quantile grid.
        let mut data: Vec<f64> = (1..50_000)
            .map(|i| -(1.0 - i as f64 / 50_000.0f64).ln())
            .collect();
        let sketch = MomentsSketch::from_data(10, &data);
        let sol = solve(&sketch, &SolverConfig::default()).unwrap();
        let ps = phis();
        let est = sol.quantiles(&ps).unwrap();
        let err = avg_quantile_error(&mut data, &est, &ps);
        assert!(err < 0.01, "avg error {err}");
    }

    #[test]
    fn lognormal_data_needs_log_moments() {
        // Heavy-tailed deterministic lognormal grid: log moments should
        // dominate the selection and error should stay small.
        let mut data: Vec<f64> = (1..30_000)
            .map(|i| {
                let p = i as f64 / 30_000.0;
                (2.0 * numerics::special::inv_norm_cdf(p)).exp()
            })
            .collect();
        let sketch = MomentsSketch::from_data(10, &data);
        let sol = solve(&sketch, &SolverConfig::default()).unwrap();
        assert!(sol.k2() > 0, "log moments unused");
        let ps = phis();
        let est = sol.quantiles(&ps).unwrap();
        let err = avg_quantile_error(&mut data, &est, &ps);
        assert!(err < 0.01, "avg error {err}");
    }

    #[test]
    fn gaussian_like_data_without_log() {
        // Signed data: log moments are unusable, standard moments only.
        let mut data: Vec<f64> = (1..40_000)
            .map(|i| numerics::special::inv_norm_cdf(i as f64 / 40_000.0))
            .collect();
        let sketch = MomentsSketch::from_data(10, &data);
        let sol = solve(&sketch, &SolverConfig::default()).unwrap();
        assert_eq!(sol.k2(), 0);
        let ps = phis();
        let est = sol.quantiles(&ps).unwrap();
        let err = avg_quantile_error(&mut data, &est, &ps);
        assert!(err < 0.005, "avg error {err}");
    }

    #[test]
    fn point_mass_and_empty() {
        let sketch = MomentsSketch::from_data(6, &[5.0, 5.0, 5.0]);
        let sol = solve(&sketch, &SolverConfig::default()).unwrap();
        assert_eq!(sol.quantile(0.3).unwrap(), 5.0);
        assert_eq!(sol.cdf(4.9), 0.0);
        assert_eq!(sol.cdf(5.0), 1.0);
        let empty = MomentsSketch::new(6);
        assert!(matches!(
            solve(&empty, &SolverConfig::default()),
            Err(Error::EmptySketch)
        ));
    }

    #[test]
    fn invalid_quantile_rejected() {
        let sketch = MomentsSketch::from_data(4, &[1.0, 2.0, 3.0]);
        let sol = solve(&sketch, &SolverConfig::default()).unwrap();
        assert!(matches!(sol.quantile(0.0), Err(Error::InvalidQuantile(_))));
        assert!(matches!(sol.quantile(1.5), Err(Error::InvalidQuantile(_))));
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let data: Vec<f64> = (1..=5000).map(|i| (i as f64).sqrt()).collect();
        let sketch = MomentsSketch::from_data(8, &data);
        let sol = solve(&sketch, &SolverConfig::default()).unwrap();
        let mut prev = -1.0;
        for i in 0..=100 {
            let x = 1.0 + (data.last().unwrap() - 1.0) * i as f64 / 100.0;
            let c = sol.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c + 1e-9 >= prev, "CDF must be monotone");
            prev = c;
        }
        assert_eq!(sol.cdf(0.0), 0.0);
        assert_eq!(sol.cdf(1e9), 1.0);
    }

    #[test]
    fn quantiles_bracket_cdf() {
        let data: Vec<f64> = (1..=10_000)
            .map(|i| (i as f64 / 100.0).sin().abs() + 0.1)
            .collect();
        let sketch = MomentsSketch::from_data(10, &data);
        let sol = solve(&sketch, &SolverConfig::default()).unwrap();
        for &phi in &[0.1, 0.5, 0.9, 0.99] {
            let q = sol.quantile(phi).unwrap();
            assert!((sol.cdf(q) - phi).abs() < 5e-3, "phi={phi}");
        }
    }

    #[test]
    fn forced_moment_counts_respected() {
        let data: Vec<f64> = (1..=2000).map(|i| i as f64).collect();
        let sketch = MomentsSketch::from_data(10, &data);
        let cfg = SolverConfig {
            k1: Some(4),
            k2: Some(0),
            ..Default::default()
        };
        let sol = solve(&sketch, &cfg).unwrap();
        assert_eq!(sol.k1(), 4);
        assert_eq!(sol.k2(), 0);
    }

    #[test]
    fn solve_robust_backs_off_on_hard_data() {
        // Two-point data defeats a full-order solve; robust solving should
        // either converge with fewer moments or report failure — never
        // panic. Near-discrete data with a slight spread converges after
        // back-off.
        let mut data = vec![1.0; 3000];
        data.extend(vec![100.0; 3000]);
        data.extend((0..60).map(|i| 1.0 + i as f64));
        let sketch = MomentsSketch::from_data(12, &data);
        let cfg = SolverConfig {
            k1: Some(12),
            k2: Some(0),
            use_log: false,
            ..Default::default()
        };
        match solve_robust(&sketch, &cfg) {
            Ok(sol) => {
                let q = sol.quantile(0.5).unwrap();
                assert!((1.0..=100.0).contains(&q));
            }
            Err(Error::SolverFailed { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn merged_sketches_estimate_like_whole() {
        // Pre-aggregation equivalence at the estimate level.
        let data: Vec<f64> = (1..=30_000).map(|i| ((i % 173) as f64) + 1.0).collect();
        let whole = MomentsSketch::from_data(10, &data);
        let mut merged = MomentsSketch::new(10);
        for chunk in data.chunks(200) {
            merged.merge(&MomentsSketch::from_data(10, chunk));
        }
        let q_whole = solve(&whole, &SolverConfig::default())
            .unwrap()
            .quantile(0.9)
            .unwrap();
        let q_merged = solve(&merged, &SolverConfig::default())
            .unwrap()
            .quantile(0.9)
            .unwrap();
        assert!(
            (q_whole - q_merged).abs() < 1e-6 * q_whole.abs().max(1.0),
            "{q_whole} vs {q_merged}"
        );
    }
}
