//! Threshold-query cascade (Section 5.2, Algorithm 2 of the paper).
//!
//! Threshold queries — "does this subpopulation's `φ`-quantile exceed
//! `t`?" — do not need a full quantile estimate. The cascade tries a
//! sequence of progressively tighter, progressively more expensive checks
//! and stops at the first one that resolves the predicate:
//!
//! 1. **Simple**: compare `t` against `[xmin, xmax]`;
//! 2. **Markov**: shifted Markov-inequality bounds on the CDF;
//! 3. **RTT**: principal-representation bounds;
//! 4. **MaxEnt**: the full maximum-entropy quantile estimate.
//!
//! The bounds hold for *every* distribution matching the sketch's
//! moments, so a stage-1–3 resolution is certified correct. In almost all
//! cases this matches what the maximum-entropy estimate would have said,
//! only faster (the paper measures up to 25× higher throughput). The one
//! exception cuts in the cascade's favor: on sharply discrete data the
//! smoothed max-ent estimate can err past a certified bound, and there
//! the cascade's bounded answer is the more trustworthy one.
//!
//! The predicate decided is `q̂_φ > t`, equivalently `F(t) < φ` for the
//! estimated CDF. (Algorithm 2 as printed in the paper transposes the two
//! early-return branches of its `CheckBound` macro relative to its own
//! rank convention; we implement the semantically consistent version.)

use crate::bounds::{markov_bound, rtt_bound, CdfBounds};
use crate::solver::{self, SolverConfig};
use crate::MomentsSketch;

/// Which cascade stages to run (all on by default). Disabling stages
/// reproduces the `Baseline / +Simple / +Markov / +RTT` rows of
/// Figures 12–13.
#[derive(Debug, Clone, Copy)]
pub struct CascadeConfig {
    /// Stage 1: min/max range check.
    pub use_simple: bool,
    /// Stage 2: Markov bounds.
    pub use_markov: bool,
    /// Stage 3: RTT bounds.
    pub use_rtt: bool,
    /// Solver settings for the final stage.
    pub solver: SolverConfig,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            use_simple: true,
            use_markov: true,
            use_rtt: true,
            solver: SolverConfig::default(),
        }
    }
}

impl CascadeConfig {
    /// A configuration with every pre-filter disabled (the paper's
    /// "Baseline": always solve for the quantile).
    pub fn baseline() -> Self {
        CascadeConfig {
            use_simple: false,
            use_markov: false,
            use_rtt: false,
            solver: SolverConfig::default(),
        }
    }
}

/// Per-stage resolution counters for a sequence of threshold queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CascadeStats {
    /// Queries answered.
    pub total: u64,
    /// Resolved by the min/max check.
    pub simple_hits: u64,
    /// Resolved by Markov bounds.
    pub markov_hits: u64,
    /// Resolved by RTT bounds.
    pub rtt_hits: u64,
    /// Fell through to the maximum-entropy estimate.
    pub maxent_evals: u64,
    /// Max-entropy solves that failed and fell back to bound midpoints.
    pub maxent_failures: u64,
}

impl CascadeStats {
    /// Fold another run's counters into this one — how a server keeps
    /// cumulative process-lifetime totals across per-query evaluators.
    pub fn accumulate(&mut self, other: &CascadeStats) {
        self.total += other.total;
        self.simple_hits += other.simple_hits;
        self.markov_hits += other.markov_hits;
        self.rtt_hits += other.rtt_hits;
        self.maxent_evals += other.maxent_evals;
        self.maxent_failures += other.maxent_failures;
    }

    /// `(stage, count)` pairs in cascade order — the stable label values
    /// a metrics exposition keys its per-stage series by. `"groups"` is
    /// the total evaluated; the rest are per-stage resolutions.
    pub fn stage_counts(&self) -> [(&'static str, u64); 6] {
        [
            ("groups", self.total),
            ("simple", self.simple_hits),
            ("markov", self.markov_hits),
            ("rtt", self.rtt_hits),
            ("maxent", self.maxent_evals),
            ("maxent_failure", self.maxent_failures),
        ]
    }

    /// Fraction of queries that reached a given stage, as in Figure 13(c).
    pub fn fraction_reaching(&self) -> [f64; 4] {
        let t = self.total.max(1) as f64;
        let after_simple = self.total - self.simple_hits;
        let after_markov = after_simple - self.markov_hits;
        let after_rtt = after_markov - self.rtt_hits;
        [
            1.0,
            after_simple as f64 / t,
            after_markov as f64 / t,
            after_rtt as f64 / t,
        ]
    }
}

/// Stateful threshold evaluator accumulating cascade statistics.
#[derive(Debug, Clone)]
pub struct ThresholdEvaluator {
    config: CascadeConfig,
    stats: CascadeStats,
}

/// Which stage resolved a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedBy {
    /// Min/max range check.
    Simple,
    /// Markov bounds.
    Markov,
    /// RTT bounds.
    Rtt,
    /// Full maximum-entropy estimate.
    MaxEnt,
}

impl ThresholdEvaluator {
    /// Create an evaluator with the given stage configuration.
    pub fn new(config: CascadeConfig) -> Self {
        ThresholdEvaluator {
            config,
            stats: CascadeStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CascadeStats {
        self.stats
    }

    /// Reset statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CascadeStats::default();
    }

    /// Decide whether the sketched population's `phi`-quantile exceeds `t`.
    ///
    /// # Examples
    ///
    /// ```
    /// use moments_sketch::{CascadeConfig, MomentsSketch, ThresholdEvaluator};
    /// let data: Vec<f64> = (1..=1000).map(f64::from).collect();
    /// let sketch = MomentsSketch::from_data(10, &data);
    /// let mut ev = ThresholdEvaluator::new(CascadeConfig::default());
    /// assert!(ev.threshold(&sketch, 100.0, 0.5));   // median > 100
    /// assert!(!ev.threshold(&sketch, 2000.0, 0.99)); // p99 < 2000 (range check)
    /// assert_eq!(ev.stats().total, 2);
    /// ```
    pub fn threshold(&mut self, sketch: &MomentsSketch, t: f64, phi: f64) -> bool {
        self.threshold_traced(sketch, t, phi).0
    }

    /// As [`Self::threshold`], also reporting which stage resolved it.
    pub fn threshold_traced(
        &mut self,
        sketch: &MomentsSketch,
        t: f64,
        phi: f64,
    ) -> (bool, ResolvedBy) {
        self.stats.total += 1;
        if sketch.is_empty() {
            self.stats.simple_hits += 1;
            return (false, ResolvedBy::Simple);
        }
        // Stage 1: range check. q_phi <= xmax, so t >= xmax means no;
        // q_phi >= xmin, so t < xmin means yes.
        if self.config.use_simple {
            if t >= sketch.max() {
                self.stats.simple_hits += 1;
                return (false, ResolvedBy::Simple);
            }
            if t < sketch.min() {
                self.stats.simple_hits += 1;
                return (true, ResolvedBy::Simple);
            }
        }
        // Stages 2-3: certified CDF bounds resolve when phi is outside them.
        if self.config.use_markov {
            if let Some(ans) = decide(markov_bound(sketch, t), phi) {
                self.stats.markov_hits += 1;
                return (ans, ResolvedBy::Markov);
            }
        }
        if self.config.use_rtt {
            if let Some(ans) = decide(rtt_bound(sketch, t), phi) {
                self.stats.rtt_hits += 1;
                return (ans, ResolvedBy::Rtt);
            }
        }
        // Stage 4: full estimate. q_phi > t  <=>  F(t) < phi.
        self.stats.maxent_evals += 1;
        match solver::solve(sketch, &self.config.solver) {
            Ok(sol) => (sol.cdf(t) < phi, ResolvedBy::MaxEnt),
            Err(_) => {
                // Degenerate population: fall back to the midpoint of the
                // tightest bound we have.
                self.stats.maxent_failures += 1;
                let b = markov_bound(sketch, t).intersect(rtt_bound(sketch, t));
                (0.5 * (b.lower + b.upper) < phi, ResolvedBy::MaxEnt)
            }
        }
    }
}

/// Resolve the predicate `F(t) < phi` from certified bounds if possible.
#[inline]
fn decide(bounds: CdfBounds, phi: f64) -> Option<bool> {
    if bounds.upper < phi {
        Some(true) // F(t) <= upper < phi: quantile is above t
    } else if bounds.lower >= phi {
        Some(false) // F(t) >= lower >= phi: quantile is at or below t
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_uniform() -> (MomentsSketch, Vec<f64>) {
        let data: Vec<f64> = (0..20_000).map(|i| i as f64 / 19_999.0).collect();
        (MomentsSketch::from_data(10, &data), data)
    }

    fn exact_answer(data: &[f64], t: f64, phi: f64) -> bool {
        let mut d = data.to_vec();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = d[((phi * d.len() as f64) as usize).min(d.len() - 1)];
        q > t
    }

    #[test]
    fn cascade_agrees_with_direct_estimates() {
        let (s, data) = sketch_uniform();
        let mut cascade = ThresholdEvaluator::new(CascadeConfig::default());
        let mut baseline = ThresholdEvaluator::new(CascadeConfig::baseline());
        for &t in &[0.05, 0.3, 0.5, 0.7, 0.95] {
            for &phi in &[0.1, 0.5, 0.9] {
                let a = cascade.threshold(&s, t, phi);
                let b = baseline.threshold(&s, t, phi);
                assert_eq!(a, b, "t={t} phi={phi}");
                // Sanity vs ground truth (uniform data: q_phi = phi).
                assert_eq!(a, exact_answer(&data, t, phi), "truth t={t} phi={phi}");
            }
        }
    }

    #[test]
    fn simple_stage_catches_out_of_range() {
        let (s, _) = sketch_uniform();
        let mut ev = ThresholdEvaluator::new(CascadeConfig::default());
        assert!(ev.threshold(&s, -0.5, 0.5));
        assert!(!ev.threshold(&s, 1.5, 0.5));
        assert_eq!(ev.stats().simple_hits, 2);
        assert_eq!(ev.stats().maxent_evals, 0);
    }

    #[test]
    fn easy_thresholds_resolved_by_bounds() {
        let (s, _) = sketch_uniform();
        let mut ev = ThresholdEvaluator::new(CascadeConfig::default());
        // phi = 0.5, t = 0.01: obviously q_0.5 > t; bounds should catch it.
        let (ans, stage) = ev.threshold_traced(&s, 0.01, 0.5);
        assert!(ans);
        assert_ne!(stage, ResolvedBy::MaxEnt);
    }

    #[test]
    fn hard_thresholds_reach_maxent() {
        let (s, _) = sketch_uniform();
        let mut ev = ThresholdEvaluator::new(CascadeConfig::default());
        // t right at the quantile: only the estimate can resolve it.
        let (_, stage) = ev.threshold_traced(&s, 0.5005, 0.5);
        assert_eq!(stage, ResolvedBy::MaxEnt);
        assert_eq!(ev.stats().maxent_evals, 1);
    }

    #[test]
    fn stats_fractions_are_monotone() {
        let (s, _) = sketch_uniform();
        let mut ev = ThresholdEvaluator::new(CascadeConfig::default());
        for i in 0..100 {
            let t = i as f64 / 100.0;
            ev.threshold(&s, t, 0.7);
        }
        let f = ev.stats().fraction_reaching();
        assert_eq!(f[0], 1.0);
        assert!(f[1] >= f[2] && f[2] >= f[3]);
        assert!(f[3] < 0.5, "most queries should resolve early: {:?}", f);
    }

    #[test]
    fn empty_sketch_is_false() {
        let s = MomentsSketch::new(10);
        let mut ev = ThresholdEvaluator::new(CascadeConfig::default());
        assert!(!ev.threshold(&s, 1.0, 0.5));
    }
}
