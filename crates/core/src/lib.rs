//! The **moments sketch**: a compact, efficiently mergeable quantile
//! summary (Gan et al., *Moment-Based Quantile Sketches for Efficient High
//! Cardinality Aggregation Queries*, VLDB 2018).
//!
//! A moments sketch stores only the minimum, maximum, count, and the first
//! `k` sample moments and log-moments of a dataset — under 200 bytes at
//! `k = 10` — yet supports `< 1%` quantile error on real-world data. Its
//! merge operation is a handful of float additions, which makes it ideal
//! for data-cube style pre-aggregation where a single query may combine
//! hundreds of thousands of per-cell summaries.
//!
//! # Quick start
//!
//! ```
//! use moments_sketch::{MomentsSketch, SolverConfig};
//!
//! let mut sketch = MomentsSketch::new(10);
//! for i in 1..=10_000 {
//!     sketch.accumulate(i as f64 / 10_000.0);
//! }
//! let est = sketch.solve(&SolverConfig::default()).unwrap();
//! let median = est.quantile(0.5).unwrap();
//! assert!((median - 0.5).abs() < 0.01);
//! ```
//!
//! # Module overview
//!
//! * [`sketch`] — the summary itself: init / accumulate / merge / sub.
//! * [`solver`] — the maximum-entropy quantile estimator (method of
//!   moments + maximum entropy principle, Section 4 of the paper), with
//!   the Chebyshev-basis conditioning and cosine-transform integration
//!   optimizations of Section 4.3.
//! * [`bounds`] — Markov and Racz–Tari–Telek (RTT) rank bounds used both
//!   for worst-case error guarantees and for cascades.
//! * [`cascade`] — the threshold-query cascade of Section 5 (Algorithm 2).
//! * [`estimators`] — the alternative estimators of the Section 6.3
//!   lesion study (gaussian, mnat, svd, cvx-min, cvx-maxent, naive
//!   newton, bfgs).
//! * [`serialize`] — compact binary encoding; [`lowprec`] — reduced
//!   precision storage with randomized rounding (Appendix C).
//! * [`stats`] — moment-shift arithmetic and floating-point stability
//!   rules (Section 4.3.2 / Appendix B).

#![warn(missing_docs)]

pub mod bounds;
pub mod cascade;
pub mod estimators;
pub mod lowprec;
pub mod serialize;
pub mod sketch;
pub mod solver;
pub mod stats;

pub use cascade::{CascadeConfig, CascadeStats, ThresholdEvaluator};
pub use sketch::MomentsSketch;
pub use solver::{solve_robust, MaxEntSolution, SolverConfig};

/// Errors produced while estimating quantiles from a sketch.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The sketch holds no data points.
    EmptySketch,
    /// The maximum-entropy optimization failed to converge — typically a
    /// near-degenerate dataset (the paper observes failures below five
    /// distinct values, Section 6.2.3).
    SolverFailed {
        /// Failure detail from the numerical layer.
        reason: String,
    },
    /// The requested quantile fraction was outside `(0, 1)`.
    InvalidQuantile(f64),
    /// Invalid configuration or argument.
    InvalidArgument(&'static str),
    /// A serialized sketch could not be decoded.
    Corrupt(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptySketch => write!(f, "sketch is empty"),
            Error::SolverFailed { reason } => write!(f, "max-entropy solve failed: {reason}"),
            Error::InvalidQuantile(p) => write!(f, "quantile fraction {p} outside (0, 1)"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Corrupt(msg) => write!(f, "corrupt sketch encoding: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<numerics::Error> for Error {
    fn from(e: numerics::Error) -> Self {
        Error::SolverFailed {
            reason: e.to_string(),
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
