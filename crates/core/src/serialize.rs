//! Compact binary encoding of a moments sketch.
//!
//! The wire format mirrors the in-memory layout: a 4-byte header
//! (magic, version, order `k`) followed by `min`, `max`, the `k + 1`
//! power sums, and the `k + 1` log power sums as little-endian `f64`s.
//! A `k = 10` sketch serializes to 218 bytes.
//!
//! [`MomentsSketch`] also derives nothing from `serde` directly; use
//! [`to_bytes`] / [`from_bytes`] for storage, or the mirror struct
//! [`SketchRepr`] for serde-based pipelines.

use crate::{Error, MomentsSketch, Result};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

const MAGIC: u8 = 0x4D; // 'M'
const VERSION: u8 = 1;

/// Serialize a sketch to its compact binary representation.
///
/// # Examples
///
/// ```
/// use moments_sketch::MomentsSketch;
/// use moments_sketch::serialize::{to_bytes, from_bytes};
/// let sketch = MomentsSketch::from_data(10, &[1.0, 2.0, 3.0]);
/// let restored = from_bytes(&to_bytes(&sketch)).unwrap();
/// assert_eq!(sketch, restored);
/// ```
pub fn to_bytes(sketch: &MomentsSketch) -> Vec<u8> {
    let k = sketch.k();
    let mut buf = Vec::with_capacity(4 + 16 + 16 * (k + 1));
    buf.put_u8(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u16_le(k as u16);
    buf.put_f64_le(sketch.min());
    buf.put_f64_le(sketch.max());
    for &v in sketch.power_sums() {
        buf.put_f64_le(v);
    }
    for &v in sketch.log_sums() {
        buf.put_f64_le(v);
    }
    buf
}

/// Deserialize a sketch from the binary representation.
pub fn from_bytes(mut buf: &[u8]) -> Result<MomentsSketch> {
    if buf.remaining() < 4 {
        return Err(Error::Corrupt("truncated header"));
    }
    if buf.get_u8() != MAGIC {
        return Err(Error::Corrupt("bad magic byte"));
    }
    if buf.get_u8() != VERSION {
        return Err(Error::Corrupt("unsupported version"));
    }
    let k = buf.get_u16_le() as usize;
    if k == 0 {
        return Err(Error::Corrupt("order must be at least 1"));
    }
    let need = 16 + 16 * (k + 1);
    if buf.remaining() < need {
        return Err(Error::Corrupt("truncated body"));
    }
    let min = buf.get_f64_le();
    let max = buf.get_f64_le();
    let mut power_sums = Vec::with_capacity(k + 1);
    for _ in 0..=k {
        power_sums.push(buf.get_f64_le());
    }
    let mut log_sums = Vec::with_capacity(k + 1);
    for _ in 0..=k {
        log_sums.push(buf.get_f64_le());
    }
    MomentsSketch::from_parts(min, max, power_sums, log_sums)
}

/// Encode a [`SolverConfig`] to a fixed 37-byte little-endian record
/// (`k1`, `k2`, `n_nodes` use `u32::MAX` as the `None` sentinel).
///
/// Estimation settings travel with a stored sketch so a deserialized
/// summary answers queries exactly like the original — the glue the
/// workspace's tagged wire format (`msketch_sketches::api`) builds on.
pub fn solver_config_to_bytes(config: &crate::SolverConfig) -> Vec<u8> {
    fn opt(v: Option<usize>) -> u32 {
        v.map_or(u32::MAX, |x| x.min((u32::MAX - 1) as usize) as u32)
    }
    let mut buf = Vec::with_capacity(37);
    buf.put_u32_le(opt(config.k1));
    buf.put_u32_le(opt(config.k2));
    buf.put_f64_le(config.kappa_max);
    buf.put_f64_le(config.grad_tol);
    buf.put_u64_le(config.max_iter as u64);
    buf.put_u32_le(opt(config.n_nodes));
    buf.put_u8(u8::from(config.use_log));
    buf
}

/// Decode a [`SolverConfig`] record written by
/// [`solver_config_to_bytes`].
pub fn solver_config_from_bytes(mut buf: &[u8]) -> Result<crate::SolverConfig> {
    if buf.remaining() != 37 {
        return Err(Error::Corrupt("solver config record must be 37 bytes"));
    }
    fn opt(v: u32) -> Option<usize> {
        (v != u32::MAX).then_some(v as usize)
    }
    let k1 = opt(buf.get_u32_le());
    let k2 = opt(buf.get_u32_le());
    let kappa_max = buf.get_f64_le();
    let grad_tol = buf.get_f64_le();
    if !kappa_max.is_finite() || kappa_max <= 0.0 || !grad_tol.is_finite() || grad_tol <= 0.0 {
        return Err(Error::Corrupt("solver tolerances must be positive finite"));
    }
    let max_iter = buf.get_u64_le() as usize;
    let n_nodes = opt(buf.get_u32_le());
    if let Some(n) = n_nodes {
        // The Chebyshev-node count the maxent solver asserts on.
        if !n.is_power_of_two() || !(8..=1 << 20).contains(&n) {
            return Err(Error::Corrupt("node count must be a power of two >= 8"));
        }
    }
    let use_log = match buf.get_u8() {
        0 => false,
        1 => true,
        _ => return Err(Error::Corrupt("invalid use_log flag")),
    };
    Ok(crate::SolverConfig {
        k1,
        k2,
        kappa_max,
        grad_tol,
        max_iter,
        n_nodes,
        use_log,
    })
}

/// Serde-friendly mirror of a sketch's state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SketchRepr {
    /// Minimum accumulated value.
    pub min: f64,
    /// Maximum accumulated value.
    pub max: f64,
    /// `[n, Σx, Σx², ...]`.
    pub power_sums: Vec<f64>,
    /// `[n⁺, Σ ln x, Σ ln² x, ...]`.
    pub log_sums: Vec<f64>,
}

impl From<&MomentsSketch> for SketchRepr {
    fn from(s: &MomentsSketch) -> Self {
        SketchRepr {
            min: s.min(),
            max: s.max(),
            power_sums: s.power_sums().to_vec(),
            log_sums: s.log_sums().to_vec(),
        }
    }
}

impl TryFrom<SketchRepr> for MomentsSketch {
    type Error = Error;
    fn try_from(r: SketchRepr) -> Result<MomentsSketch> {
        MomentsSketch::from_parts(r.min, r.max, r.power_sums, r.log_sums)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_state() {
        let s = MomentsSketch::from_data(10, &[1.0, 2.5, 3.75, 10.0, 0.5]);
        let bytes = to_bytes(&s);
        assert_eq!(bytes.len(), 4 + 16 + 16 * 11);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn roundtrip_empty_sketch() {
        let s = MomentsSketch::new(4);
        let back = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(s, back);
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_corrupt_input() {
        let s = MomentsSketch::from_data(4, &[1.0, 2.0]);
        let mut bytes = to_bytes(&s);
        assert!(matches!(from_bytes(&[]), Err(Error::Corrupt(_))));
        assert!(matches!(from_bytes(&bytes[..10]), Err(Error::Corrupt(_))));
        bytes[0] = 0xFF;
        assert!(matches!(from_bytes(&bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let s = MomentsSketch::from_data(2, &[1.0]);
        let mut bytes = to_bytes(&s);
        bytes[1] = 99;
        assert!(matches!(from_bytes(&bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn solver_config_roundtrip() {
        let config = crate::SolverConfig {
            k1: Some(7),
            k2: None,
            kappa_max: 5e3,
            grad_tol: 1e-8,
            max_iter: 99,
            n_nodes: Some(128),
            use_log: false,
        };
        let bytes = solver_config_to_bytes(&config);
        assert_eq!(bytes.len(), 37);
        let back = solver_config_from_bytes(&bytes).unwrap();
        assert_eq!(back.k1, Some(7));
        assert_eq!(back.k2, None);
        assert_eq!(back.kappa_max, 5e3);
        assert_eq!(back.grad_tol, 1e-8);
        assert_eq!(back.max_iter, 99);
        assert_eq!(back.n_nodes, Some(128));
        assert!(!back.use_log);
        assert!(solver_config_from_bytes(&bytes[..12]).is_err());
        let mut bad = bytes;
        bad[36] = 7;
        assert!(solver_config_from_bytes(&bad).is_err());
    }

    #[test]
    fn serde_repr_roundtrip() {
        let s = MomentsSketch::from_data(6, &[0.1, 0.2, 0.9]);
        let repr = SketchRepr::from(&s);
        let back = MomentsSketch::try_from(repr).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn merged_after_roundtrip_still_estimates() {
        let a = MomentsSketch::from_data(8, &(1..=500).map(f64::from).collect::<Vec<_>>());
        let b = MomentsSketch::from_data(8, &(501..=1000).map(f64::from).collect::<Vec<_>>());
        let mut a2 = from_bytes(&to_bytes(&a)).unwrap();
        a2.merge(&from_bytes(&to_bytes(&b)).unwrap());
        let q = a2.quantile(0.5).unwrap();
        assert!((q - 500.0).abs() < 25.0, "median {q}");
    }
}
