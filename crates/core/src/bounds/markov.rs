//! Markov-inequality rank bounds (Section 5.1 of the paper).
//!
//! For a non-negative variable `y` with `k`-th moment `E[y^k]`, Markov's
//! inequality gives `P(y >= s) <= E[y^k] / s^k` for every `k`. The paper
//! applies this to three transforms of the sketched data:
//!
//! * `T+ : y = x - xmin` — upper-bounds the mass above a threshold, i.e.
//!   lower-bounds the CDF;
//! * `T- : y = xmax - x` — upper-bounds the CDF;
//! * `T^l : y = ln x` (shifted by `ln xmin`) — both of the above in log
//!   space, valuable for long-tailed data.

use super::CdfBounds;
use crate::stats::ScaledDomain;
use crate::MomentsSketch;

/// Markov bound on the CDF fraction at threshold `t`.
pub fn markov_bound(sketch: &MomentsSketch, t: f64) -> CdfBounds {
    if sketch.is_empty() {
        return CdfBounds::vacuous();
    }
    let (a, b) = (sketch.min(), sketch.max());
    if t <= a {
        return CdfBounds {
            lower: 0.0,
            upper: 0.0,
        };
    }
    if t > b {
        return CdfBounds {
            lower: 1.0,
            upper: 1.0,
        };
    }
    let mut bound = transform_bounds(&sketch.moments(), a, b, t);
    if sketch.log_usable() && t > 0.0 {
        let lb = transform_bounds(&sketch.log_moments(), a.ln(), b.ln(), t.ln());
        bound = bound.intersect(lb);
    }
    bound.normalized()
}

/// Apply the two shifted Markov bounds to one moment vector on `[a, b]`.
fn transform_bounds(raw: &[f64], a: f64, b: f64, t: f64) -> CdfBounds {
    // Moments of (x - a) and (b - x), via binomial shifts. Using radius 1
    // keeps the values unscaled.
    let plus = crate::stats::shifted_moments(
        raw,
        &ScaledDomain {
            center: a,
            radius: 1.0,
        },
    );
    let minus_signed = crate::stats::shifted_moments(
        raw,
        &ScaledDomain {
            center: b,
            radius: 1.0,
        },
    );
    let mut lower = 0.0f64;
    let mut upper = 1.0f64;
    let s_plus = t - a;
    let s_minus = b - t;
    let mut pow_plus = 1.0;
    let mut pow_minus = 1.0;
    for k in 1..raw.len() {
        pow_plus *= s_plus;
        pow_minus *= s_minus;
        // E[(x-a)^k] >= 0 and E[(b-x)^k] = (-1)^k E[(x-b)^k] >= 0; clamp
        // tiny negatives from float cancellation.
        let m_plus = plus[k].max(0.0);
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        let m_minus = (sign * minus_signed[k]).max(0.0);
        if pow_plus > 0.0 && m_plus.is_finite() {
            // P(x >= t) <= m_plus / (t-a)^k  ->  P(x < t) >= 1 - ratio.
            lower = lower.max(1.0 - m_plus / pow_plus);
        }
        if pow_minus > 0.0 && m_minus.is_finite() {
            // P(x <= t) <= m_minus / (b-t)^k.
            upper = upper.min(m_minus / pow_minus);
        }
    }
    CdfBounds { lower, upper }.normalized()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sketch(k: usize) -> (MomentsSketch, Vec<f64>) {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64 / 9999.0).collect();
        (MomentsSketch::from_data(k, &data), data)
    }

    #[test]
    fn bounds_contain_true_cdf() {
        let (s, data) = uniform_sketch(10);
        let n = data.len() as f64;
        for &t in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let truth = data.iter().filter(|&&x| x < t).count() as f64 / n;
            let b = markov_bound(&s, t);
            assert!(
                b.lower <= truth + 1e-9,
                "t={t}: lower {} > {truth}",
                b.lower
            );
            assert!(
                b.upper >= truth - 1e-9,
                "t={t}: upper {} < {truth}",
                b.upper
            );
        }
    }

    #[test]
    fn bounds_are_informative_at_extremes() {
        let (s, _) = uniform_sketch(10);
        // Near the max, the T- transform certifies high CDF.
        let b = markov_bound(&s, 0.99);
        assert!(b.lower > 0.5, "lower = {}", b.lower);
        // Near the min, the T+ transform certifies low CDF.
        let b = markov_bound(&s, 0.01);
        assert!(b.upper < 0.5, "upper = {}", b.upper);
    }

    #[test]
    fn outside_range_is_exact() {
        let (s, _) = uniform_sketch(6);
        let b = markov_bound(&s, -1.0);
        assert_eq!((b.lower, b.upper), (0.0, 0.0));
        let b = markov_bound(&s, 2.0);
        assert_eq!((b.lower, b.upper), (1.0, 1.0));
    }

    #[test]
    fn log_moments_tighten_long_tail() {
        // Long-tailed data: log-space Markov should beat standard-space
        // for thresholds in the tail.
        let data: Vec<f64> = (1..20_000).map(|i| (i as f64 / 2000.0).exp()).collect();
        let with_log = MomentsSketch::from_data(10, &data);
        // Destroy log moments by adding a non-positive point.
        let mut no_log = MomentsSketch::from_data(10, &data);
        no_log.accumulate(0.0);
        let t = 100.0;
        let b_log = markov_bound(&with_log, t);
        let b_std = markov_bound(&no_log, t);
        assert!(b_log.width() <= b_std.width() + 1e-9);
    }

    #[test]
    fn more_moments_never_hurt() {
        let (s4, data) = {
            let data: Vec<f64> = (0..5000).map(|i| (i as f64 / 100.0).sin() + 2.0).collect();
            (MomentsSketch::from_data(4, &data), data)
        };
        let s12 = MomentsSketch::from_data(12, &data);
        for &t in &[1.5, 2.0, 2.5] {
            let b4 = markov_bound(&s4, t);
            let b12 = markov_bound(&s12, t);
            assert!(b12.width() <= b4.width() + 1e-9, "t={t}");
        }
    }
}
