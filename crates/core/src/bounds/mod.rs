//! Moment-based rank/CDF bounds (Section 5.1 of the paper).
//!
//! Any distribution matching the moments in a sketch must satisfy certain
//! sharp inequalities; these give worst-case guarantees on quantile
//! estimates and power the threshold-query cascade:
//!
//! * [`markov`] — Markov's inequality applied to the shifted datasets
//!   `x - xmin`, `xmax - x`, and `ln x` (cheap, loose);
//! * [`rtt`] — the Racz–Tari–Telek bound via principal representations of
//!   the truncated moment problem (more expensive, sharp).

pub mod markov;
pub mod rtt;

pub use markov::markov_bound;
pub use rtt::rtt_bound;

use crate::MomentsSketch;

/// Two-sided bound on the CDF fraction `P(X < t)` of the sketched data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfBounds {
    /// Certified lower bound on `P(X < t)`.
    pub lower: f64,
    /// Certified upper bound on `P(X <= t)`.
    pub upper: f64,
}

impl CdfBounds {
    /// The vacuous bound `\[0, 1\]`.
    pub fn vacuous() -> Self {
        CdfBounds {
            lower: 0.0,
            upper: 1.0,
        }
    }

    /// Intersect with another bound (both must hold).
    pub fn intersect(self, other: CdfBounds) -> CdfBounds {
        CdfBounds {
            lower: self.lower.max(other.lower),
            upper: self.upper.min(other.upper),
        }
    }

    /// Width of the bound interval.
    pub fn width(self) -> f64 {
        (self.upper - self.lower).max(0.0)
    }

    /// Clamp into `\[0, 1\]` and repair tiny inversions from roundoff.
    pub fn normalized(self) -> CdfBounds {
        let lower = self.lower.clamp(0.0, 1.0);
        let upper = self.upper.clamp(0.0, 1.0).max(lower);
        CdfBounds { lower, upper }
    }
}

/// Tightest available bound: Markov intersected with RTT.
///
/// # Examples
///
/// ```
/// use moments_sketch::MomentsSketch;
/// use moments_sketch::bounds::combined_bound;
/// let data: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
/// let sketch = MomentsSketch::from_data(10, &data);
/// let b = combined_bound(&sketch, 0.5);
/// // The true CDF at 0.5 is ~0.5 and must lie inside the bound.
/// assert!(b.lower <= 0.5 && 0.5 <= b.upper);
/// ```
pub fn combined_bound(sketch: &MomentsSketch, t: f64) -> CdfBounds {
    markov_bound(sketch, t).intersect(rtt_bound(sketch, t))
}

/// Certified worst-case quantile error for an estimate `q_est` of the
/// `phi`-quantile: the largest `|F(q_est) - phi|` over all distributions
/// matching the sketch's moments (used to reproduce Figure 23).
pub fn quantile_error_bound(sketch: &MomentsSketch, q_est: f64, phi: f64) -> f64 {
    let b = combined_bound(sketch, q_est).normalized();
    (phi - b.lower).abs().max((b.upper - phi).abs())
}

/// A certified enclosure for a quantile: every dataset matching the
/// sketch's moments has its `phi`-quantile inside `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileInterval {
    /// Certified lower bound on the quantile value.
    pub lo: f64,
    /// Certified upper bound on the quantile value.
    pub hi: f64,
}

impl QuantileInterval {
    /// Interval width in value units.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo).max(0.0)
    }
}

/// Certified value interval for the `phi`-quantile, by bisecting the
/// threshold axis against the combined Markov/RTT CDF bounds.
///
/// Any `t` with `upper(t) < phi` certifies `q_phi > t` (so `t` is a valid
/// lower bound), and any `t` with `lower(t) >= phi` certifies
/// `q_phi <= t`. This turns the paper's rank bounds into an *inverse*
/// bound usable directly by applications that need guarantees rather
/// than estimates.
pub fn quantile_interval(sketch: &MomentsSketch, phi: f64, iters: usize) -> QuantileInterval {
    let (mut lo_lo, mut lo_hi) = (sketch.min(), sketch.max());
    // Largest t whose CDF upper bound stays below phi.
    for _ in 0..iters {
        let mid = 0.5 * (lo_lo + lo_hi);
        if combined_bound(sketch, mid).upper < phi {
            lo_lo = mid;
        } else {
            lo_hi = mid;
        }
    }
    let (mut hi_lo, mut hi_hi) = (sketch.min(), sketch.max());
    // Smallest t whose CDF lower bound reaches phi.
    for _ in 0..iters {
        let mid = 0.5 * (hi_lo + hi_hi);
        if combined_bound(sketch, mid).lower >= phi {
            hi_hi = mid;
        } else {
            hi_lo = mid;
        }
    }
    QuantileInterval {
        lo: lo_lo,
        hi: hi_hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_intersect_and_width() {
        let a = CdfBounds {
            lower: 0.2,
            upper: 0.9,
        };
        let b = CdfBounds {
            lower: 0.4,
            upper: 0.8,
        };
        let c = a.intersect(b);
        assert_eq!(c.lower, 0.4);
        assert_eq!(c.upper, 0.8);
        assert!((c.width() - 0.4).abs() < 1e-15);
    }

    #[test]
    fn quantile_interval_contains_truth_and_estimate() {
        let data: Vec<f64> = (1..=20_000).map(|i| (i as f64).sqrt()).collect();
        let sketch = MomentsSketch::from_data(10, &data);
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &phi in &[0.1, 0.5, 0.9, 0.99] {
            let iv = quantile_interval(&sketch, phi, 60);
            let truth = sorted[(phi * sorted.len() as f64) as usize];
            assert!(
                iv.lo <= truth && truth <= iv.hi,
                "phi={phi}: [{}, {}] vs {truth}",
                iv.lo,
                iv.hi
            );
            let est = sketch.quantile(phi).unwrap();
            assert!(
                iv.lo <= est + 1e-9 && est <= iv.hi + 1e-9,
                "phi={phi}: estimate {est} outside [{}, {}]",
                iv.lo,
                iv.hi
            );
        }
    }

    #[test]
    fn quantile_interval_narrows_with_more_moments() {
        let data: Vec<f64> = (1..10_000)
            .map(|i| -(1.0 - i as f64 / 10_000.0f64).ln())
            .collect();
        let wide = quantile_interval(&MomentsSketch::from_data(4, &data), 0.5, 50);
        let tight = quantile_interval(&MomentsSketch::from_data(12, &data), 0.5, 50);
        assert!(tight.width() <= wide.width() + 1e-9);
    }

    #[test]
    fn error_bound_decreases_with_more_moments() {
        let data: Vec<f64> = (1..=4000).map(|i| (i as f64).sqrt()).collect();
        let s4 = MomentsSketch::from_data(4, &data);
        let s10 = MomentsSketch::from_data(10, &data);
        let q = 40.0; // around the 40th percentile of sqrt(1..4000)
        let e4 = quantile_error_bound(&s4, q, 0.4);
        let e10 = quantile_error_bound(&s10, q, 0.4);
        assert!(e10 <= e4 + 1e-9, "e10 {e10} vs e4 {e4}");
    }
}
