//! The Racz–Tari–Telek (RTT) moment-based distribution bound
//! (Section 5.1 of the paper; Racz, Tari & Telek, *A moments based
//! distribution bounding method*, 2006).
//!
//! Given moments `μ_0..μ_{2n}` of a distribution, the sharp extremal
//! values of `P(X < C)` / `P(X <= C)` over *all* matching distributions
//! are attained by the *principal representation* with an atom at `C`: a
//! discrete distribution supported on `C` plus `n` other points that
//! matches all the moments (Markov–Krein theory). The bound is then
//!
//! ```text
//! P(X < C)  >=  Σ_{x_i < C} p_i          (mass strictly below C)
//! P(X <= C) <=  Σ_{x_i < C} p_i + p_C    (adding the atom at C)
//! ```
//!
//! Construction: with the modified functional `L_w[x^j] = μ_{j+1} - C μ_j`
//! (i.e. weight `w(x) = x - C`), the non-atom support points are the roots
//! of the monic degree-`n` polynomial `q` orthogonal to all lower degrees
//! under `L_w`; the weights follow from a Vandermonde solve against the
//! raw moments. These polynomials are real-rooted, so the derivative-
//! interlacing root finder from the numerics crate applies.
//!
//! The procedure does not mix standard and log moments, so — as in the
//! paper — we run it once on each set and intersect the bounds.

use super::CdfBounds;
use crate::stats::{shifted_moments, ScaledDomain};
use crate::MomentsSketch;
use numerics::linalg::Matrix;
use numerics::roots::real_roots_in;

/// RTT bound on the CDF fraction at threshold `t`, combining the standard
/// and log moment sets.
pub fn rtt_bound(sketch: &MomentsSketch, t: f64) -> CdfBounds {
    if sketch.is_empty() {
        return CdfBounds::vacuous();
    }
    let (a, b) = (sketch.min(), sketch.max());
    if t <= a {
        return CdfBounds {
            lower: 0.0,
            upper: 0.0,
        };
    }
    if t > b {
        return CdfBounds {
            lower: 1.0,
            upper: 1.0,
        };
    }
    let mut bound = domain_bound(&sketch.moments(), a, b, t);
    if sketch.log_usable() && t > 0.0 {
        bound = bound.intersect(domain_bound(&sketch.log_moments(), a.ln(), b.ln(), t.ln()));
    }
    bound.normalized()
}

/// RTT bound from one moment vector over `[a, b]`, computed in the scaled
/// domain `[-1, 1]` for numerical stability.
fn domain_bound(raw: &[f64], a: f64, b: f64, t: f64) -> CdfBounds {
    let dom = ScaledDomain::from_range(a, b);
    if dom.degenerate() {
        return CdfBounds::vacuous();
    }
    let k_cap = crate::stats::max_stable_k(dom.offset()).min(raw.len() - 1);
    let m = shifted_moments(&raw[..=k_cap], &dom);
    let c = dom.scale(t);
    // Try the largest usable representation first, shrinking on numerical
    // failure (near-singular Hankel systems or negative weights).
    let n_max = k_cap / 2;
    for n in (1..=n_max).rev() {
        if let Some(bound) = principal_bound(&m, c, n) {
            return bound;
        }
    }
    CdfBounds::vacuous()
}

/// Principal-representation bound with `n` non-atom support points, using
/// moments `m_0..m_{2n}`. Returns `None` on numerical failure.
fn principal_bound(m: &[f64], c: f64, n: usize) -> Option<CdfBounds> {
    debug_assert!(m.len() > 2 * n);
    // Modified moments under w(x) = x - c: L_w[x^j] = m_{j+1} - c m_j.
    let lw = |j: usize| m[j + 1] - c * m[j];
    // Solve for the monic orthogonal polynomial q = x^n + Σ a_i x^i with
    // L_w[x^j q] = 0 for j = 0..n-1.
    let coeffs = if n == 0 {
        vec![1.0]
    } else {
        let mut h = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        for j in 0..n {
            for i in 0..n {
                h[(j, i)] = lw(i + j);
            }
            rhs[j] = -lw(n + j);
        }
        let a = h.solve(&rhs).ok()?;
        let mut coeffs = a;
        coeffs.push(1.0);
        coeffs
    };
    // Support points: roots of q, which must be real and lie in (or very
    // near) the scaled support.
    let margin = 1e-9;
    let roots = real_roots_in(&coeffs, -1.0 - margin, 1.0 + margin);
    if roots.len() != n {
        return None;
    }
    // Assemble support = {c} ∪ roots; if a root collides with c the
    // representation degenerates — treat the pair as one point.
    let mut support = vec![c];
    for &r in &roots {
        if (r - c).abs() > 1e-9 {
            support.push(r);
        }
    }
    let s = support.len();
    // Weights from the Vandermonde system V p = m[0..s].
    let mut v = Matrix::zeros(s, s);
    for j in 0..s {
        for (i, &x) in support.iter().enumerate() {
            v[(j, i)] = x.powi(j as i32);
        }
    }
    let p = v.solve(&m[..s]).ok()?;
    // Validity: weights must be (numerically) non-negative.
    if p.iter().any(|&w| w < -1e-7 || !w.is_finite()) {
        return None;
    }
    let total: f64 = p.iter().map(|&w| w.max(0.0)).sum();
    if total <= 0.0 {
        return None;
    }
    let mut below = 0.0;
    let mut at = 0.0;
    for (&x, &w) in support.iter().zip(&p) {
        let w = w.max(0.0) / total;
        if x < c - 1e-12 {
            below += w;
        } else if (x - c).abs() <= 1e-12 {
            at += w;
        }
    }
    Some(
        CdfBounds {
            lower: below,
            upper: below + at,
        }
        .normalized(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::markov_bound;

    fn sketch_of(data: &[f64], k: usize) -> MomentsSketch {
        MomentsSketch::from_data(k, data)
    }

    #[test]
    fn bounds_contain_true_cdf_uniform() {
        let data: Vec<f64> = (0..20_000).map(|i| i as f64 / 19_999.0).collect();
        let s = sketch_of(&data, 10);
        let n = data.len() as f64;
        for &t in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let truth = data.iter().filter(|&&x| x < t).count() as f64 / n;
            let b = rtt_bound(&s, t);
            assert!(
                b.lower <= truth + 1e-6 && truth <= b.upper + 1e-6,
                "t={t}: [{}, {}] vs {truth}",
                b.lower,
                b.upper
            );
        }
    }

    #[test]
    fn bounds_contain_true_cdf_exponential() {
        let data: Vec<f64> = (1..30_000)
            .map(|i| -(1.0 - i as f64 / 30_000.0f64).ln())
            .collect();
        let s = sketch_of(&data, 10);
        let n = data.len() as f64;
        for &t in &[0.2, 0.5, 1.0, 2.0, 4.0] {
            let truth = data.iter().filter(|&&x| x < t).count() as f64 / n;
            let b = rtt_bound(&s, t);
            assert!(
                b.lower <= truth + 1e-6 && truth <= b.upper + 1e-6,
                "t={t}: [{}, {}] vs {truth}",
                b.lower,
                b.upper
            );
        }
    }

    #[test]
    fn rtt_tighter_than_markov() {
        // The paper's cascade relies on RTT being sharper than Markov.
        let data: Vec<f64> = (0..20_000).map(|i| (i as f64 / 19_999.0).powi(2)).collect();
        let s = sketch_of(&data, 10);
        let mut rtt_total = 0.0;
        let mut markov_total = 0.0;
        for &t in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            rtt_total += rtt_bound(&s, t).width();
            markov_total += markov_bound(&s, t).width();
        }
        assert!(
            rtt_total < markov_total,
            "rtt {rtt_total} vs markov {markov_total}"
        );
    }

    #[test]
    fn bound_width_shrinks_with_more_moments() {
        let data: Vec<f64> = (0..10_000)
            .map(|i| (i as f64 / 9_999.0 * 3.0).sin().abs())
            .collect();
        let s4 = sketch_of(&data, 4);
        let s12 = sketch_of(&data, 12);
        let t = 0.5;
        assert!(rtt_bound(&s12, t).width() <= rtt_bound(&s4, t).width() + 1e-9);
    }

    #[test]
    fn out_of_range_thresholds() {
        let s = sketch_of(&[1.0, 2.0, 3.0], 6);
        assert_eq!(rtt_bound(&s, 0.5).upper, 0.0);
        assert_eq!(rtt_bound(&s, 3.5).lower, 1.0);
    }

    #[test]
    fn two_point_data_is_pinned() {
        // With data {0, 1} at equal mass, P(X < 0.5) is exactly 0.5; the
        // bound should be tight around it.
        let mut data = vec![0.0; 500];
        data.extend(vec![1.0; 500]);
        let s = sketch_of(&data, 8);
        let b = rtt_bound(&s, 0.5);
        assert!((b.lower - 0.5).abs() < 1e-6, "lower {}", b.lower);
        assert!((b.upper - 0.5).abs() < 1e-6, "upper {}", b.upper);
    }
}
