//! Sliding-window spike detection with turnstile updates
//! (Section 7.2.2 of the paper).
//!
//! Pre-aggregates a day of traffic into 10-minute panes, then flags every
//! 4-hour window whose p99 exceeds a threshold. Window maintenance is two
//! sketch operations (subtract the oldest pane, add the newest) instead of
//! a 24-way re-merge.
//!
//! Run: `cargo run --release --example sliding_window`

use msketch::datasets::dist;
use msketch::macrobase::scan_windows;
use msketch::prelude::{CascadeConfig, MomentsSketch};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let panes_per_day = 144; // 10-minute panes
    let window = 24; // 4 hours
    let mut rng = StdRng::seed_from_u64(99);

    // Baseline traffic ~ lognormal latencies; an incident around 18:00
    // (pane 108) injects heavy tail latencies for 80 minutes.
    let panes: Vec<MomentsSketch> = (0..panes_per_day)
        .map(|p| {
            let mut s = MomentsSketch::new(10);
            for _ in 0..2_000 {
                s.accumulate(dist::lognormal(&mut rng, 3.2, 0.5));
            }
            if (108..116).contains(&p) {
                for _ in 0..200 {
                    s.accumulate(2_000.0 + dist::exponential(&mut rng, 0.01));
                }
            }
            s
        })
        .collect();

    let threshold = 1_500.0;
    let (alerts, stats) = scan_windows(&panes, window, threshold, 0.99, CascadeConfig::default());

    println!(
        "{} windows scanned, {} alerts (p99 > {threshold} ms):",
        stats.total,
        alerts.len()
    );
    for a in &alerts {
        let minutes = a.start_pane * 10;
        println!(
            "  window starting {:02}:{:02} flagged",
            minutes / 60,
            minutes % 60
        );
    }
    println!(
        "cascade resolved {}/{} windows without a max-entropy solve",
        stats.simple_hits + stats.markov_hits + stats.rtt_hits,
        stats.total
    );
}
