//! Certified quantile enclosures: what the sketch can *guarantee*, not
//! just estimate (Section 5.1 bounds, inverted).
//!
//! SLO reporting is the motivating use: "p99 is at most X" must hold for
//! every dataset consistent with the sketch, not merely for the
//! max-entropy estimate.
//!
//! Run: `cargo run --release --example certified_bounds`

use msketch::datasets::dist;
use msketch::prelude::MomentsSketch;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut latencies: Vec<f64> = (0..200_000)
        .map(|_| dist::gamma(&mut rng, 2.0, 12.0) + 1.0)
        .collect();

    for k in [4usize, 8, 12] {
        let sketch = MomentsSketch::from_data(k, &latencies);
        println!(
            "--- sketch order k = {k} ({} bytes) ---",
            sketch.size_bytes()
        );
        for phi in [0.5, 0.9, 0.99] {
            let (est, interval) = sketch.quantile_with_bounds(phi).expect("solve");
            println!(
                "p{:<4}: estimate {est:>7.2} ms, certified within [{:>7.2}, {:>7.2}] (width {:.1})",
                phi * 100.0,
                interval.lo,
                interval.hi,
                interval.width()
            );
        }
    }

    // Ground truth for comparison.
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = latencies.len();
    println!("--- exact ---");
    for phi in [0.5, 0.9, 0.99] {
        println!(
            "p{:<4}: {:.2} ms",
            phi * 100.0,
            latencies[(phi * n as f64) as usize]
        );
    }
    println!("\nHigher orders tighten the certified interval; the estimate sits\ninside it at every order.");
}
