//! The paper's motivating scenario: a Druid-like cube over mobile
//! telemetry, pre-aggregated by (country, app version, OS), answering
//! roll-up percentile queries and a GROUP BY ... HAVING threshold query.
//!
//! Run: `cargo run --release --example app_telemetry`

use msketch::datasets::dist;
use msketch::prelude::{DynCube, GroupThresholdQuery, QueryEngine, Sketch, SketchSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let countries = ["USA", "CAN", "MEX", "BRA", "DEU", "JPN"];
    let versions = ["v7.0", "v7.1", "v8.0", "v8.1", "v8.2"];
    let oses = ["ios-6.1", "ios-6.2", "ios-6.3", "android-12"];

    let mut cube = DynCube::from_spec(SketchSpec::moments(10), &["country", "app_version", "os"]);

    // Ingest telemetry: request latency in ms, log-normal-ish, with a
    // regression in v8.2 on android.
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..400_000 {
        let country = countries[rng.gen_range(0..countries.len())];
        let version = versions[rng.gen_range(0..versions.len())];
        let os = oses[rng.gen_range(0..oses.len())];
        let mut latency = dist::lognormal(&mut rng, 3.0, 0.7);
        if version == "v8.2" && os == "android-12" {
            latency *= 6.0; // the regression we want to find
        }
        cube.insert(&[country, version, os], latency).unwrap();
    }
    println!(
        "cube: {} rows in {} cells ({} dims)",
        cube.row_count(),
        cube.cell_count(),
        cube.dim_count()
    );

    // Roll-up: global p99 (merges every cell).
    let p99 = QueryEngine::quantile(&cube, &cube.no_filter(), 0.99).unwrap();
    println!("global p99 latency = {p99:.1} ms");

    // Filtered roll-up: p99 for USA on v8.2 (the paper's example query).
    let mut filter = cube.no_filter();
    filter[0] = cube.dictionary(0).unwrap().lookup("USA");
    filter[1] = cube.dictionary(1).unwrap().lookup("v8.2");
    let usa_v82 = QueryEngine::quantile(&cube, &filter, 0.99).unwrap();
    println!("USA / v8.2 p99 latency = {usa_v82:.1} ms");

    // Threshold query: GROUP BY (version, os) HAVING p99 > 100ms.
    let groups = cube.group_by(&[1, 2], &cube.no_filter()).unwrap();
    let query = GroupThresholdQuery::new(0.99, 150.0);
    let (hits, stats) = query.run_dyn(&groups);
    println!(
        "\nGROUP BY (version, os) HAVING p99 > 150ms — {} of {} groups:",
        hits.len(),
        groups.len()
    );
    for key in &hits {
        let version = cube.dictionary(1).unwrap().decode(key[0]).unwrap();
        let os = cube.dictionary(2).unwrap().decode(key[1]).unwrap();
        let q = groups[key].quantile(0.99);
        println!("  {version:>6} on {os:<12} p99 = {q:.0} ms");
    }
    println!(
        "cascade resolved {}/{} groups without a max-entropy solve",
        stats.simple_hits + stats.markov_hits + stats.rtt_hits,
        stats.total
    );
}
