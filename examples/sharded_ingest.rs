//! Sharded concurrent ingestion, end to end: several writer threads feed
//! an 8-shard engine; readers query epoch snapshots while ingestion
//! continues; panes rotate into a sliding window; and the final snapshot
//! is checked bit-exact against single-threaded ingestion — the moments
//! sketch's shard merges are exact power-sum additions, so concurrency
//! costs no accuracy.
//!
//! Run with: `cargo run --release --example sharded_ingest`

use msketch::prelude::*;

fn row(i: u64) -> ([&'static str; 2], f64) {
    let app = ["checkout", "search", "feed", "auth"][(i % 4) as usize];
    let region = ["us-east", "eu-west", "ap-south"][(i % 3) as usize];
    // The checkout app in ap-south develops a latency tail.
    let base = (i % 180) as f64 + 5.0;
    let metric = if app == "checkout" && region == "ap-south" && i % 5 < 2 {
        base + 900.0
    } else {
        base
    };
    ([app, region], metric)
}

fn main() {
    const ROWS_PER_WRITER: u64 = 200_000;
    const WRITERS: u64 = 4;

    // A DynCube-backed engine: the sketch backend is a runtime string.
    let spec = SketchSpec::parse("moments:10").unwrap();
    let mut engine = DynShardedCube::new(
        spec.clone(),
        &["app", "region"],
        EngineConfig::with_shards(8).batch_rows(4096),
    );

    // Four writer threads ingest concurrently through their own handles.
    //
    // Load-bearing for the bit-exact check below: writer `w` takes rows
    // `i*WRITERS + w`, and `row()` picks the app as `i % 4 == w`, so each
    // (app, region) cell is fed by exactly one writer and its value
    // stream keeps sequential order on that writer's FIFO channel. With
    // cells shared between writers, per-cell arrival order would be
    // nondeterministic and quantiles would match only up to float
    // roundoff, not bit for bit (see tests/shard_equivalence.rs).
    let mut writers: Vec<ShardWriter<SketchSpec>> = (0..WRITERS).map(|_| engine.writer()).collect();
    std::thread::scope(|scope| {
        for (w, writer) in writers.iter_mut().enumerate() {
            scope.spawn(move || {
                for i in 0..ROWS_PER_WRITER {
                    let (dims, metric) = row(i * WRITERS + w as u64);
                    writer.insert(&dims, metric).expect("ingest");
                }
                writer.flush().expect("flush");
            });
        }
    });
    drop(writers);

    // Epoch snapshot: an immutable merged cube readers query while the
    // engine keeps accepting writes.
    let snap = engine.snapshot().expect("snapshot");
    println!(
        "snapshot epoch {}: {} rows in {} cells",
        snap.epoch(),
        snap.row_count(),
        snap.cell_count()
    );
    assert_eq!(snap.row_count(), ROWS_PER_WRITER * WRITERS);

    // The same cascade threshold query the paper runs on static cubes
    // works on a concurrent snapshot unchanged.
    let query = GroupThresholdQuery::new(0.9, 500.0);
    let (hits, stats) = query.run_cube(&snap, &[0, 1], &snap.no_filter()).unwrap();
    println!(
        "HAVING p90 > 500 flagged {} of {} groups (maxent solves: {})",
        hits.len(),
        stats.total,
        stats.maxent_evals
    );
    for key in &hits {
        let app = snap.dictionary(0).unwrap().decode(key[0]).unwrap();
        let region = snap.dictionary(1).unwrap().decode(key[1]).unwrap();
        println!("  -> {app} @ {region}");
        assert_eq!((app, region), ("checkout", "ap-south"));
    }
    assert_eq!(hits.len(), 1);

    // Bit-exactness: a sequentially built cube answers identically.
    let mut sequential = DynCube::from_spec(spec, &["app", "region"]);
    for i in 0..ROWS_PER_WRITER * WRITERS {
        let (dims, metric) = row(i);
        sequential.insert(&dims, metric).unwrap();
    }
    let a = snap.rollup(&snap.no_filter()).unwrap();
    let b = sequential.rollup(&sequential.no_filter()).unwrap();
    for phi in [0.5, 0.9, 0.99] {
        assert_eq!(
            a.quantile(phi).to_bits(),
            b.quantile(phi).to_bits(),
            "phi {phi}"
        );
    }
    println!("sharded snapshot == sequential ingest (bit-exact rollups)");

    // Sliding-window serving: rotate panes into a turnstile window.
    let mut sliding = SlidingEngine::new(
        DynShardedCube::new(
            SketchSpec::moments(10),
            &["app", "region"],
            EngineConfig::with_shards(4).batch_rows(1024),
        ),
        3,
    )
    .expect("moments-backed engine");
    for pane in 0..5u64 {
        for i in 0..20_000u64 {
            let (dims, _) = row(i);
            // Latency drifts upward pane over pane.
            sliding
                .insert(&dims, (i % 180) as f64 + (pane * 50) as f64)
                .unwrap();
        }
        let (retired, agg) = sliding.rotate().unwrap();
        println!(
            "pane {pane}: retired {} rows, window p50 = {:.1} over {} points",
            retired.row_count(),
            agg.quantile(0.5).unwrap(),
            agg.count()
        );
    }
    let window = sliding.aggregate().unwrap();
    assert_eq!(window.count(), 60_000.0, "window spans exactly 3 panes");
    println!("done");
}
