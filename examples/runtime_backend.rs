//! Runtime backend selection + the Druid segment lifecycle: pick the
//! sketch backend from a string, pre-aggregate a cube, persist it to
//! bytes, restore it, and answer the same queries on the restored copy.
//!
//! Run: `cargo run --release --example runtime_backend [-- <spec>]`
//! where `<spec>` is `"moments"`, `"tdigest"`, `"gk"`, ... or a
//! parameterized form like `"moments:10"` / `"gk:0.0167"`. The
//! `MSKETCH_BACKEND` environment variable works too.

use msketch::datasets::dist;
use msketch::prelude::{DynCube, GroupThresholdQuery, QueryEngine, Sketch, SketchSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // The backend arrives as a *string* at runtime — argv, env, or a
    // per-table config in a real deployment. No recompilation involved.
    let choice = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("MSKETCH_BACKEND").ok())
        .unwrap_or_else(|| "moments:10".to_string());
    let spec = SketchSpec::parse(&choice).unwrap_or_else(|e| {
        eprintln!("{e}; valid kinds: moments, merge12, randomw, gk, tdigest, sampling, shist, ewhist, exact");
        std::process::exit(2);
    });
    println!("backend: {} (param {})", spec.kind(), spec.param());

    // Ingest service telemetry into a cube of the chosen backend; the
    // `eu`/`batch` slice runs hot.
    let mut cube = DynCube::from_spec(spec, &["region", "workload"]);
    let mut rng = StdRng::seed_from_u64(42);
    let regions = ["us", "eu", "ap"];
    let workloads = ["interactive", "batch"];
    for _ in 0..200_000 {
        let region = regions[rng.gen_range(0..regions.len())];
        let workload = workloads[rng.gen_range(0..workloads.len())];
        let mut ms = dist::lognormal(&mut rng, 2.5, 0.6);
        if region == "eu" && workload == "batch" {
            ms *= 8.0;
        }
        cube.insert(&[region, workload], ms).unwrap();
    }
    println!(
        "cube: {} rows in {} cells",
        cube.row_count(),
        cube.cell_count()
    );

    // Persist the whole cube — spec, dictionaries, cells — and restore
    // it, as a historical node would load a segment.
    let bytes = cube.to_bytes();
    let restored = DynCube::from_bytes(&bytes).expect("cube roundtrip");
    println!(
        "serialized {} bytes; restored {} cells of kind {}",
        bytes.len(),
        restored.cell_count(),
        restored.spec().kind()
    );

    // The restored cube answers the same queries.
    for (label, cube) in [("live", &cube), ("restored", &restored)] {
        let p99 = QueryEngine::quantile(cube, &cube.no_filter(), 0.99).unwrap();
        println!("{label:>9}: global p99 = {p99:.1} ms");
    }

    // GROUP BY (region, workload) HAVING p90 > 60ms, on the restored
    // copy. Moments-sketch cells route through the threshold cascade;
    // other backends answer directly.
    let groups = restored.group_by(&[0, 1], &restored.no_filter()).unwrap();
    let (hits, stats) = GroupThresholdQuery::new(0.9, 60.0).run_dyn(&groups);
    println!("\nGROUP BY (region, workload) HAVING p90 > 60ms:");
    for key in &hits {
        let region = restored.dictionary(0).unwrap().decode(key[0]).unwrap();
        let workload = restored.dictionary(1).unwrap().decode(key[1]).unwrap();
        let q = groups[key].quantile(0.9);
        println!("  {region:>3} / {workload:<11} p90 = {q:.0} ms");
    }
    if stats.total > 0 {
        println!(
            "cascade resolved {}/{} groups without a max-entropy solve",
            stats.simple_hits + stats.markov_hits + stats.rtt_hits,
            stats.total
        );
    }
}
