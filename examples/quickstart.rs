//! Quickstart: build moments sketches, merge them, and estimate quantiles.
//!
//! Run: `cargo run --release --example quickstart`

use msketch::prelude::{solve_robust, MomentsSketch, SolverConfig};

fn main() {
    // Simulate per-server latency measurements (ms) collected on three
    // machines. Each machine maintains its own 184-byte sketch...
    let mut server_a = MomentsSketch::new(10);
    let mut server_b = MomentsSketch::new(10);
    let mut server_c = MomentsSketch::new(10);
    for i in 0..50_000 {
        let base = 5.0 + (i % 1000) as f64 / 100.0; // 5–15 ms body
        server_a.accumulate(base);
        server_b.accumulate(base * 1.2);
        // Server C has a slow tail.
        server_c.accumulate(if i % 100 == 0 { base * 40.0 } else { base });
    }
    println!(
        "per-server sketches: {} bytes each, {} points total",
        server_a.size_bytes(),
        server_a.count() + server_b.count() + server_c.count()
    );

    // ...and the fleet-wide view is a three-way merge: a few float adds.
    let mut fleet = server_a.clone();
    fleet.merge(&server_b);
    fleet.merge(&server_c);

    // Quantile estimation solves the maximum-entropy problem once, then
    // answers any number of quantiles.
    let solution = solve_robust(&fleet, &SolverConfig::default()).expect("solve");
    println!(
        "solver: k1={} standard moments, k2={} log moments, {} Newton iterations",
        solution.k1(),
        solution.k2(),
        solution.iterations()
    );
    for phi in [0.5, 0.9, 0.99, 0.999] {
        let q = solution.quantile(phi).expect("quantile");
        println!("p{:<5} = {q:>8.2} ms", phi * 100.0);
    }

    // The estimated CDF is also directly queryable.
    println!(
        "fraction of requests under 20ms ≈ {:.1}%",
        100.0 * solution.cdf(20.0)
    );
}
