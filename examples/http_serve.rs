//! The serving layer end to end: start the HTTP server, stream 120k
//! rows of telemetry *over HTTP*, rotate a snapshot, and answer
//! quantile / group-by / threshold queries over the wire — asserting
//! every served number equals the in-process answer on the same
//! snapshot **bit for bit** (shortest-round-trip float formatting in
//! the JSON layer makes the HTTP hop lossless).
//!
//! Run with: `cargo run --release --example http_serve`

use msketch::prelude::*;
use msketch::server::{client, json};

const ROWS: usize = 120_000;
const BATCH: usize = 10_000;

fn row(i: usize) -> (&'static str, &'static str, f64) {
    let app = ["checkout", "search", "feed", "auth"][i % 4];
    let region = ["us-east", "eu-west", "ap-south"][(i / 4) % 3];
    let base = (i % 180) as f64 + 5.0;
    // The checkout app in ap-south develops a latency tail.
    let metric = if app == "checkout" && region == "ap-south" && i % 5 < 2 {
        base + 900.0
    } else {
        base
    };
    (app, region, metric)
}

fn main() {
    // A moments:10-backed engine served over HTTP. Background refresh is
    // disabled so the snapshot under test is pinned (production would
    // set a cadence like 500ms).
    let mut server = MsketchServer::start(
        SketchSpec::parse("moments:10").unwrap(),
        &["app", "region"],
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            refresh_interval: std::time::Duration::ZERO,
            engine: EngineConfig::with_shards(4).batch_rows(4096),
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();
    println!("serving on http://{addr}");

    // ── Ingest 120k rows over HTTP, columnar batches on one keep-alive
    // connection.
    let mut conn = client::Conn::connect(addr).expect("connect");
    for batch in 0..ROWS / BATCH {
        let mut apps = Vec::with_capacity(BATCH);
        let mut regions = Vec::with_capacity(BATCH);
        let mut metrics = Vec::with_capacity(BATCH);
        for i in 0..BATCH {
            let (app, region, metric) = row(batch * BATCH + i);
            apps.push(app);
            regions.push(region);
            metrics.push(metric);
        }
        let body = json::Value::object(vec![
            (
                "columns",
                json::Value::Array(vec![json::Value::array(apps), json::Value::array(regions)]),
            ),
            ("metrics", json::Value::array(metrics)),
        ]);
        let (status, reply) = conn.post("/ingest", &body.to_string()).expect("ingest");
        assert_eq!(status, 200, "{reply}");
    }
    let (status, reply) = conn.post("/refresh", "").expect("refresh");
    assert_eq!(status, 200);
    let epoch = json::from_str(&reply)
        .unwrap()
        .get("epoch")
        .unwrap()
        .as_u64()
        .unwrap();
    println!("ingested {ROWS} rows over HTTP; snapshot epoch {epoch}");

    // The in-process ground truth: the very snapshot the server now
    // answers from.
    let snap = server.current_snapshot().expect("snapshot");
    assert_eq!(snap.epoch(), epoch);
    assert_eq!(snap.row_count() as usize, ROWS);

    // ── /quantile: global and filtered, bit-exact vs the same rollup.
    let phis = [0.5, 0.9, 0.99];
    let (status, reply) = conn.get("/quantile?q=0.5,0.9,0.99").expect("quantile");
    assert_eq!(status, 200, "{reply}");
    let doc = json::from_str(&reply).unwrap();
    let expected = QueryEngine::quantiles(snap.cube(), &snap.no_filter(), &phis).unwrap();
    for (served, expect) in doc
        .get("values")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .zip(&expected.values)
    {
        assert_eq!(served.as_f64().unwrap().to_bits(), expect.to_bits());
    }
    println!(
        "GET /quantile         p50={} p90={} p99={} (bit-exact vs in-process)",
        expected.values[0], expected.values[1], expected.values[2]
    );

    let (status, reply) = conn
        .get("/quantile?q=0.99&app=checkout&region=ap-south")
        .expect("filtered quantile");
    assert_eq!(status, 200, "{reply}");
    let doc = json::from_str(&reply).unwrap();
    let mut filter = snap.no_filter();
    filter[0] = snap.dictionary(0).unwrap().lookup("checkout");
    filter[1] = snap.dictionary(1).unwrap().lookup("ap-south");
    let expected = QueryEngine::quantiles(snap.cube(), &filter, &[0.99]).unwrap();
    let served = doc.get("values").unwrap().at(0).unwrap().as_f64().unwrap();
    assert_eq!(served.to_bits(), expected.values[0].to_bits());
    assert_eq!(doc.get("count").unwrap().as_f64(), Some(expected.count));
    println!(
        "GET /quantile (filtered checkout@ap-south) p99={served} over {} rows",
        expected.count
    );

    // ── /groupby: per-app quantiles, bit-exact per group.
    let (status, reply) = conn.get("/groupby?by=app&q=0.5,0.99").expect("groupby");
    assert_eq!(status, 200, "{reply}");
    let doc = json::from_str(&reply).unwrap();
    let expected =
        QueryEngine::group_quantiles_decoded(snap.cube(), &[0], &snap.no_filter(), &[0.5, 0.99])
            .unwrap();
    let groups = doc.get("groups").unwrap().as_array().unwrap();
    assert_eq!(groups.len(), expected.len());
    for (group, expect) in groups.iter().zip(&expected) {
        assert_eq!(
            group.get("key").unwrap().at(0).unwrap().as_str().unwrap(),
            expect.key[0]
        );
        assert_eq!(group.get("count").unwrap().as_f64(), Some(expect.count));
        for (served, value) in group
            .get("values")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .zip(&expect.values)
        {
            assert_eq!(served.as_f64().unwrap().to_bits(), value.to_bits());
        }
    }
    println!(
        "GET /groupby          {} groups, all values bit-exact",
        groups.len()
    );

    // ── /threshold: the HAVING cascade, identical hits to run_cube on
    // the same snapshot.
    let (status, reply) = conn
        .get("/threshold?by=app,region&q=0.9&t=500")
        .expect("threshold");
    assert_eq!(status, 200, "{reply}");
    let doc = json::from_str(&reply).unwrap();
    let expected = GroupThresholdQuery::new(0.9, 500.0)
        .run_cube_decoded(snap.cube(), &[0, 1], &snap.no_filter())
        .unwrap();
    let hits: Vec<Vec<String>> = doc
        .get("hits")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|hit| {
            hit.as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_str().unwrap().to_string())
                .collect()
        })
        .collect();
    assert_eq!(hits, expected.hits);
    assert_eq!(hits, [["checkout", "ap-south"]]);
    assert_eq!(
        doc.get("stats").unwrap().get("total").unwrap().as_u64(),
        Some(expected.stats.total)
    );
    println!(
        "GET /threshold        HAVING p90>500 flagged {:?} ({} of {} groups reached maxent)",
        hits[0].join("@"),
        expected.stats.maxent_evals,
        expected.stats.total
    );

    // ── /stats: serving counters.
    let (status, reply) = conn.get("/stats").expect("stats");
    assert_eq!(status, 200);
    let doc = json::from_str(&reply).unwrap();
    assert_eq!(
        doc.get("snapshot_rows").unwrap().as_u64(),
        Some(ROWS as u64)
    );
    assert_eq!(doc.get("epoch_lag").unwrap().as_u64(), Some(0));
    println!("GET /stats            {reply}");

    server.shutdown();
    println!("server shut down cleanly (HTTP pool + shard workers joined)");
}
