//! MacroBase-style outlier-rate search: find the subpopulations whose
//! outlier rate is 30x the overall rate, with cascade statistics
//! (Section 7.2.1 of the paper).
//!
//! Run: `cargo run --release --example threshold_alerts`

use msketch::datasets::dist;
use msketch::prelude::{MacroBaseConfig, MacroBaseEngine, MomentsSketch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 200 device models; two of them have a memory-usage anomaly.
    let mut rng = StdRng::seed_from_u64(7);
    let anomalous = [41usize, 137];
    let mut groups: Vec<(String, MomentsSketch)> = Vec::new();
    let mut all = MomentsSketch::new(10);
    for model in 0..200 {
        let mut sketch = MomentsSketch::new(10);
        for _ in 0..5_000 {
            let mut mb = dist::gamma(&mut rng, 4.0, 60.0); // ~240 MB typical
            if anomalous.contains(&model) && rng.gen::<f64>() < 0.45 {
                mb += 4_000.0; // leak: +4 GB on ~45% of sessions
            }
            sketch.accumulate(mb);
        }
        all.merge(&sketch);
        groups.push((format!("model-{model:03}"), sketch));
    }

    let mut engine = MacroBaseEngine::new(MacroBaseConfig::default());
    let t99 = engine.global_threshold(&all).expect("global threshold");
    println!(
        "global p99 memory = {t99:.0} MB; searching for models with outlier rate >= {}x overall",
        engine.config().rate_ratio
    );

    let reports = engine.search(groups.iter().map(|(l, s)| (l.as_str(), s)), t99);
    println!("\nflagged subpopulations:");
    for r in &reports {
        println!("  {} ({} sessions)", r.label, r.count);
    }
    let stats = engine.stats();
    let frac = stats.fraction_reaching();
    println!(
        "\ncascade: {} groups checked | simple {} | markov {} | rtt {} | maxent {}",
        stats.total, stats.simple_hits, stats.markov_hits, stats.rtt_hits, stats.maxent_evals
    );
    println!(
        "fraction reaching each stage: simple {:.2}, markov {:.2}, rtt {:.2}, maxent {:.3}",
        frac[0], frac[1], frac[2], frac[3]
    );
}
